//! Streaming container readers.
//!
//! [`ChunkReader`] pulls one record at a time out of an app-trace container
//! over any [`std::io::Read`] source, holding at most one decoded chunk
//! payload in memory — the binary analogue of the text
//! `trace_stream::StreamParser`.  [`read_reduced_container`] materializes a
//! reduced trace chunk by chunk, and [`decode_app_any`] /
//! [`decode_reduced_any`] fall back to the monolithic v1 codec when the
//! magic bytes say so.

use std::io::Read;

use trace_model::codec::varint::read_u64 as varint_read_u64;
use trace_model::codec::{
    decode_app_trace, decode_reduced_trace, read_exec, read_record, read_stored_segment,
    read_string, read_string_table, Reader, APP_TRACE_MAGIC, REDUCED_TRACE_MAGIC,
};
use trace_model::{
    AppTrace, ContextTable, Rank, RankTrace, ReducedAppTrace, ReducedRankTrace, RegionTable, Time,
    TraceRecord,
};

use crate::error::ContainerError;
use crate::layout::{read_header, ChunkKind, ChunkStream, PayloadKind, CONTAINER_MAGIC};

/// The decoded preamble chunk: program name, declared rank count and the
/// interned string tables shared by every section.
#[derive(Clone, Debug, PartialEq)]
pub struct Preamble {
    /// The traced program's name.
    pub name: String,
    /// Number of rank sections the file declares.
    pub declared_ranks: usize,
    /// Region (code location) names.
    pub regions: RegionTable,
    /// Segment context names.
    pub contexts: ContextTable,
}

fn parse_preamble(payload: &[u8]) -> Result<Preamble, ContainerError> {
    let mut reader = Reader::new(payload);
    let name = read_string(&mut reader)?;
    let regions = RegionTable::from_names(read_string_table(&mut reader)?);
    let contexts = ContextTable::from_names(read_string_table(&mut reader)?);
    let declared_ranks = varint_read_u64(&mut reader)? as usize;
    Ok(Preamble {
        name,
        declared_ranks,
        regions,
        contexts,
    })
}

/// One item pulled from an app-trace container, mirroring the text
/// streaming parser's item stream.
#[derive(Clone, Debug, PartialEq)]
pub enum ContainerItem {
    /// A rank section opened.
    RankStart(Rank),
    /// A record inside the open section.
    Record(TraceRecord),
    /// The open rank section closed.
    RankEnd(Rank),
}

/// Decode cursor over the payload of the current `RECORDS` chunk.
#[derive(Default)]
struct ChunkCursor {
    payload: Vec<u8>,
    pos: usize,
    remaining: u64,
    prev_time: Time,
}

impl ChunkCursor {
    fn load(&mut self, payload: Vec<u8>) -> Result<(), ContainerError> {
        let mut reader = Reader::new(&payload);
        let remaining = varint_read_u64(&mut reader)?;
        let pos = payload.len() - reader.remaining();
        if remaining == 0 && pos != payload.len() {
            return Err(ContainerError::TrailingBytes {
                what: "the declared records of a RECORDS chunk",
                bytes: payload.len() - pos,
            });
        }
        self.payload = payload;
        self.pos = pos;
        self.remaining = remaining;
        self.prev_time = Time::ZERO;
        Ok(())
    }

    fn next_record(&mut self) -> Result<TraceRecord, ContainerError> {
        // A broken position invariant degrades to an empty slice, which the
        // record decoder reports as a typed truncation error.
        let slice = self.payload.get(self.pos..).unwrap_or(&[]);
        let mut reader = Reader::new(slice);
        let (record, new_prev) = read_record(&mut reader, self.prev_time)?;
        self.pos += slice.len() - reader.remaining();
        self.prev_time = new_prev;
        self.remaining -= 1;
        if self.remaining == 0 && reader.remaining() != 0 {
            return Err(ContainerError::TrailingBytes {
                what: "the declared records of a RECORDS chunk",
                bytes: reader.remaining(),
            });
        }
        Ok(record)
    }
}

struct SectionProgress {
    rank: Rank,
    records: u64,
    segments: u64,
    events: u64,
}

enum ReaderState {
    /// Between rank sections.
    Idle,
    /// Inside a rank section, decoding `RECORDS` chunks.
    InSection(SectionProgress),
    /// The index (or the single section) has been consumed.
    Done,
}

/// Pull reader for app-trace containers over any [`std::io::Read`] source.
///
/// [`ChunkReader::new`] reads the header and preamble and then iterates the
/// whole file; [`ChunkReader::section`] starts directly at a `RANK_BEGIN`
/// chunk (located via the index footer) and yields exactly that section —
/// the entry point the index-sharded parallel ingestion uses.
pub struct ChunkReader<R> {
    stream: ChunkStream<R>,
    preamble: Option<Preamble>,
    state: ReaderState,
    cursor: ChunkCursor,
    ranks_seen: usize,
    single_section: bool,
}

impl<R: Read> ChunkReader<R> {
    /// Opens a whole container: validates the header, requires an app
    /// payload, and decodes the preamble chunk.
    pub fn new(reader: R) -> Result<Self, ContainerError> {
        let mut stream = ChunkStream::new(reader, 0);
        let kind = read_header(&mut stream)?;
        if kind != PayloadKind::App {
            return Err(ContainerError::UnexpectedChunk {
                expected: "an app payload (kind byte 0)",
                found: "a reduced payload",
            });
        }
        let chunk = stream.next_chunk()?;
        if chunk.kind != ChunkKind::Preamble {
            return Err(ContainerError::UnexpectedChunk {
                expected: "PREAMBLE",
                found: chunk.kind.name(),
            });
        }
        Ok(ChunkReader {
            stream,
            preamble: Some(parse_preamble(&chunk.payload)?),
            state: ReaderState::Idle,
            cursor: ChunkCursor::default(),
            ranks_seen: 0,
            single_section: false,
        })
    }

    /// Resumes reading at one rank section.  `reader` must be positioned at
    /// the section's `RANK_BEGIN` chunk (byte `offset` of the file, from
    /// the index footer).  The iteration ends after that section's
    /// `RANK_END`; no preamble is available in this mode.
    pub fn section(reader: R, offset: u64) -> Self {
        ChunkReader {
            stream: ChunkStream::new(reader, offset),
            preamble: None,
            state: ReaderState::Idle,
            cursor: ChunkCursor::default(),
            ranks_seen: 0,
            single_section: true,
        }
    }

    /// The preamble tables ([`ChunkReader::new`] mode only).
    pub fn preamble(&self) -> Option<&Preamble> {
        self.preamble.as_ref()
    }

    /// Number of complete rank sections consumed so far.
    pub fn ranks_seen(&self) -> usize {
        self.ranks_seen
    }

    /// Largest chunk payload buffered so far, in bytes — the reader's
    /// resident-memory high-water mark (excluding constant-size state).
    pub fn peak_chunk_bytes(&self) -> usize {
        self.stream.peak_payload_bytes()
    }

    /// Attaches an observability shard to the underlying chunk stream (see
    /// [`ChunkStream::set_obs`]).
    pub fn set_obs(&mut self, obs: trace_obs::ObsShard) {
        self.stream.set_obs(obs);
    }

    fn end_section(&mut self, payload: &[u8]) -> Result<ContainerItem, ContainerError> {
        let ReaderState::InSection(progress) =
            std::mem::replace(&mut self.state, ReaderState::Idle)
        else {
            // Only reachable through a caller bug; still a typed error so the
            // decode surface stays panic-free.
            return Err(ContainerError::UnexpectedChunk {
                expected: "an open rank section at RANK_END",
                found: "no open section",
            });
        };
        let mut reader = Reader::new(payload);
        let rank = Rank(varint_read_u64(&mut reader)? as u32);
        let _chunks = varint_read_u64(&mut reader)?;
        let records = varint_read_u64(&mut reader)?;
        let segments = varint_read_u64(&mut reader)?;
        let events = varint_read_u64(&mut reader)?;
        if rank != progress.rank {
            return Err(ContainerError::UnexpectedChunk {
                expected: "RANK_END for the open rank",
                found: "RANK_END for another rank",
            });
        }
        for (what, declared, found) in [
            ("section records", records, progress.records),
            ("section segments", segments, progress.segments),
            ("section events", events, progress.events),
        ] {
            if declared != found {
                return Err(ContainerError::CountMismatch {
                    what,
                    declared,
                    found,
                });
            }
        }
        self.ranks_seen += 1;
        if self.single_section {
            self.state = ReaderState::Done;
        }
        Ok(ContainerItem::RankEnd(rank))
    }

    /// Pulls the next item, or `Ok(None)` once the index footer (or, in
    /// section mode, the section's `RANK_END`) has been consumed.
    pub fn next_item(&mut self) -> Result<Option<ContainerItem>, ContainerError> {
        loop {
            match &mut self.state {
                ReaderState::Done => return Ok(None),
                ReaderState::InSection(progress) => {
                    if self.cursor.remaining > 0 {
                        let record = self.cursor.next_record()?;
                        progress.records += 1;
                        match &record {
                            TraceRecord::Event(_) => progress.events += 1,
                            TraceRecord::SegmentEnd { .. } => progress.segments += 1,
                            TraceRecord::SegmentBegin { .. } => {}
                        }
                        return Ok(Some(ContainerItem::Record(record)));
                    }
                    let chunk = self.stream.next_chunk()?;
                    match chunk.kind {
                        ChunkKind::Records => self.cursor.load(chunk.payload)?,
                        ChunkKind::RankEnd => return Ok(Some(self.end_section(&chunk.payload)?)),
                        other => {
                            return Err(ContainerError::UnexpectedChunk {
                                expected: "RECORDS or RANK_END",
                                found: other.name(),
                            })
                        }
                    }
                }
                ReaderState::Idle => {
                    let chunk = self.stream.next_chunk()?;
                    match chunk.kind {
                        ChunkKind::RankBegin => {
                            let mut reader = Reader::new(&chunk.payload);
                            let rank = Rank(varint_read_u64(&mut reader)? as u32);
                            self.state = ReaderState::InSection(SectionProgress {
                                rank,
                                records: 0,
                                segments: 0,
                                events: 0,
                            });
                            return Ok(Some(ContainerItem::RankStart(rank)));
                        }
                        ChunkKind::Index => {
                            let sections = crate::index::parse_index_payload(&chunk.payload)?;
                            let declared = self
                                .preamble
                                .as_ref()
                                .map_or(sections.len(), |p| p.declared_ranks);
                            if self.ranks_seen != declared || sections.len() != declared {
                                return Err(ContainerError::CountMismatch {
                                    what: "rank sections",
                                    declared: declared as u64,
                                    found: self.ranks_seen as u64,
                                });
                            }
                            self.stream.finish_trailer(chunk.offset)?;
                            self.state = ReaderState::Done;
                            return Ok(None);
                        }
                        other => {
                            return Err(ContainerError::UnexpectedChunk {
                                expected: "RANK_BEGIN or INDEX",
                                found: other.name(),
                            })
                        }
                    }
                }
            }
        }
    }

    /// Skips the remainder of the open rank section without decoding (or
    /// CRC-checking) its chunk payloads.  Returns the skipped rank.
    pub fn skip_current_rank(&mut self) -> Result<Rank, ContainerError> {
        let ReaderState::InSection(progress) =
            std::mem::replace(&mut self.state, ReaderState::Idle)
        else {
            self.state = ReaderState::Done;
            return Err(ContainerError::UnexpectedChunk {
                expected: "an open rank section to skip",
                found: "no section",
            });
        };
        let rank = progress.rank;
        self.cursor = ChunkCursor::default();
        loop {
            match self.stream.skip_chunk()? {
                ChunkKind::Records => {}
                ChunkKind::RankEnd => {
                    self.ranks_seen += 1;
                    if self.single_section {
                        self.state = ReaderState::Done;
                    }
                    return Ok(rank);
                }
                other => {
                    return Err(ContainerError::UnexpectedChunk {
                        expected: "RECORDS or RANK_END",
                        found: other.name(),
                    })
                }
            }
        }
    }
}

/// Materializes a full [`AppTrace`] from an app-trace container.
pub fn read_app_container<R: Read>(reader: R) -> Result<AppTrace, ContainerError> {
    let mut chunks = ChunkReader::new(reader)?;
    let Some(preamble) = chunks.preamble().cloned() else {
        return Err(ContainerError::UnexpectedChunk {
            expected: "a decoded PREAMBLE (whole-file mode)",
            found: "a section-mode reader",
        });
    };
    let mut app = AppTrace {
        name: preamble.name,
        regions: preamble.regions,
        contexts: preamble.contexts,
        ranks: Vec::with_capacity(preamble.declared_ranks),
    };
    let mut open: Option<RankTrace> = None;
    while let Some(item) = chunks.next_item()? {
        match item {
            ContainerItem::RankStart(rank) => open = Some(RankTrace::new(rank)),
            ContainerItem::Record(record) => open
                .as_mut()
                .ok_or(ContainerError::UnexpectedChunk {
                    expected: "RANK_BEGIN",
                    found: "RECORDS",
                })?
                .push(record),
            ContainerItem::RankEnd(_) => {
                let section = open.take().ok_or(ContainerError::UnexpectedChunk {
                    expected: "RANK_BEGIN",
                    found: "RANK_END",
                })?;
                app.ranks.push(section);
            }
        }
    }
    Ok(app)
}

/// Materializes a [`ReducedAppTrace`] from a reduced-trace container,
/// decoding one chunk at a time.
pub fn read_reduced_container<R: Read>(reader: R) -> Result<ReducedAppTrace, ContainerError> {
    let mut stream = ChunkStream::new(reader, 0);
    let kind = read_header(&mut stream)?;
    if kind != PayloadKind::Reduced {
        return Err(ContainerError::UnexpectedChunk {
            expected: "a reduced payload (kind byte 1)",
            found: "an app payload",
        });
    }
    let chunk = stream.next_chunk()?;
    if chunk.kind != ChunkKind::Preamble {
        return Err(ContainerError::UnexpectedChunk {
            expected: "PREAMBLE",
            found: chunk.kind.name(),
        });
    }
    let preamble = parse_preamble(&chunk.payload)?;
    let mut reduced = ReducedAppTrace {
        name: preamble.name,
        regions: preamble.regions,
        contexts: preamble.contexts,
        ranks: Vec::with_capacity(preamble.declared_ranks),
    };

    let mut open: Option<ReducedRankTrace> = None;
    // Latches once the section's first EXECS chunk arrives: the format
    // requires all STORED chunks to precede all EXECS chunks (spec
    // invariant 3), matching the only order the writer produces.
    let mut exec_phase = false;
    loop {
        let chunk = stream.next_chunk()?;
        match chunk.kind {
            ChunkKind::RankBegin => {
                if open.is_some() {
                    return Err(ContainerError::UnexpectedChunk {
                        expected: "STORED, EXECS or RANK_END",
                        found: "RANK_BEGIN",
                    });
                }
                let mut reader = Reader::new(&chunk.payload);
                open = Some(ReducedRankTrace::new(Rank(
                    varint_read_u64(&mut reader)? as u32
                )));
                exec_phase = false;
            }
            ChunkKind::Stored => {
                let rank = open.as_mut().ok_or(ContainerError::UnexpectedChunk {
                    expected: "RANK_BEGIN",
                    found: "STORED",
                })?;
                if exec_phase {
                    return Err(ContainerError::UnexpectedChunk {
                        expected: "EXECS or RANK_END (stored segments precede executions)",
                        found: "STORED",
                    });
                }
                let mut reader = Reader::new(&chunk.payload);
                let count = varint_read_u64(&mut reader)?;
                for _ in 0..count {
                    rank.stored.push(read_stored_segment(&mut reader)?);
                }
                if !reader.is_at_end() {
                    return Err(ContainerError::TrailingBytes {
                        what: "the declared segments of a STORED chunk",
                        bytes: reader.remaining(),
                    });
                }
            }
            ChunkKind::Execs => {
                let rank = open.as_mut().ok_or(ContainerError::UnexpectedChunk {
                    expected: "RANK_BEGIN",
                    found: "EXECS",
                })?;
                exec_phase = true;
                let mut reader = Reader::new(&chunk.payload);
                let count = varint_read_u64(&mut reader)?;
                let mut prev_start = Time::ZERO;
                for _ in 0..count {
                    let (exec, new_prev) = read_exec(&mut reader, prev_start)?;
                    prev_start = new_prev;
                    rank.execs.push(exec);
                }
                if !reader.is_at_end() {
                    return Err(ContainerError::TrailingBytes {
                        what: "the declared executions of an EXECS chunk",
                        bytes: reader.remaining(),
                    });
                }
            }
            ChunkKind::RankEnd => {
                let rank = open.take().ok_or(ContainerError::UnexpectedChunk {
                    expected: "RANK_BEGIN",
                    found: "RANK_END",
                })?;
                let mut reader = Reader::new(&chunk.payload);
                let end_rank = Rank(varint_read_u64(&mut reader)? as u32);
                let _chunks = varint_read_u64(&mut reader)?;
                let records = varint_read_u64(&mut reader)?;
                let segments = varint_read_u64(&mut reader)?;
                let events = varint_read_u64(&mut reader)?;
                if end_rank != rank.rank {
                    return Err(ContainerError::UnexpectedChunk {
                        expected: "RANK_END for the open rank",
                        found: "RANK_END for another rank",
                    });
                }
                let found = (rank.stored.len() + rank.execs.len()) as u64;
                if records != found {
                    return Err(ContainerError::CountMismatch {
                        what: "reduced section items",
                        declared: records,
                        found,
                    });
                }
                if segments != rank.stored.len() as u64 || events != rank.execs.len() as u64 {
                    return Err(ContainerError::CountMismatch {
                        what: "reduced section stored/exec split",
                        declared: segments,
                        found: rank.stored.len() as u64,
                    });
                }
                reduced.ranks.push(rank);
            }
            ChunkKind::Index => {
                if open.is_some() {
                    return Err(ContainerError::UnexpectedChunk {
                        expected: "RANK_END",
                        found: "INDEX",
                    });
                }
                if reduced.ranks.len() != preamble.declared_ranks {
                    return Err(ContainerError::CountMismatch {
                        what: "rank sections",
                        declared: preamble.declared_ranks as u64,
                        found: reduced.ranks.len() as u64,
                    });
                }
                stream.finish_trailer(chunk.offset)?;
                return Ok(reduced);
            }
            other => {
                return Err(ContainerError::UnexpectedChunk {
                    expected: "a section or INDEX chunk",
                    found: other.name(),
                })
            }
        }
    }
}

/// Decodes a full app trace from either format: chunked v2 containers
/// (magic `TRC2`) or monolithic v1 files (magic `TRCF`) via the fallback
/// decoder.
pub fn decode_app_any(bytes: &[u8]) -> Result<AppTrace, ContainerError> {
    match bytes.first_chunk::<4>() {
        Some(&magic) if magic == CONTAINER_MAGIC => read_app_container(bytes),
        Some(&magic) if magic == APP_TRACE_MAGIC => Ok(decode_app_trace(bytes)?),
        Some(&magic) => Err(ContainerError::BadMagic { found: magic }),
        None => Err(ContainerError::Truncated {
            what: "file header",
        }),
    }
}

/// Decodes a reduced trace from either format: chunked v2 containers or
/// monolithic v1 files via the fallback decoder.
pub fn decode_reduced_any(bytes: &[u8]) -> Result<ReducedAppTrace, ContainerError> {
    match bytes.first_chunk::<4>() {
        Some(&magic) if magic == CONTAINER_MAGIC => read_reduced_container(bytes),
        Some(&magic) if magic == REDUCED_TRACE_MAGIC => Ok(decode_reduced_trace(bytes)?),
        Some(&magic) => Err(ContainerError::BadMagic { found: magic }),
        None => Err(ContainerError::Truncated {
            what: "file header",
        }),
    }
}
