//! The seekable chunk-index footer.
//!
//! The last 12 bytes of a container file are a trailer pointing back at the
//! `INDEX` chunk, which lists every rank section with its byte offset and
//! summary counts.  A consumer with a seekable handle can therefore assign
//! whole rank sections to workers without scanning the file — the basis of
//! the index-sharded parallel ingestion in `trace_stream`.

use std::io::{Read, Seek, SeekFrom};

use trace_model::codec::varint::read_u64 as varint_read_u64;
use trace_model::codec::Reader;
use trace_model::Rank;

use crate::error::ContainerError;
use crate::layout::{read_header, ChunkKind, ChunkStream, PayloadKind, INDEX_MAGIC, TRAILER_LEN};

/// One rank section as listed in the index footer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankSectionEntry {
    /// The rank whose records the section holds.
    pub rank: Rank,
    /// Byte offset of the section's `RANK_BEGIN` chunk.
    pub offset: u64,
    /// Number of payload chunks (`RECORDS`/`STORED`/`EXECS`) in the section.
    pub chunks: u64,
    /// Total items in the section (records, or stored + executions).
    pub records: u64,
    /// Completed segments (app) or stored representatives (reduced).
    pub segments: u64,
    /// Event records (app) or segment executions (reduced).
    pub events: u64,
}

/// The decoded index footer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContainerIndex {
    /// Whether the file holds a full or a reduced trace.
    pub kind: PayloadKind,
    /// One entry per rank section, in file order.
    pub sections: Vec<RankSectionEntry>,
}

/// Parses the payload of an `INDEX` chunk.
pub(crate) fn parse_index_payload(payload: &[u8]) -> Result<Vec<RankSectionEntry>, ContainerError> {
    let mut reader = Reader::new(payload);
    let count = varint_read_u64(&mut reader)?;
    let mut sections = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        sections.push(RankSectionEntry {
            rank: Rank(varint_read_u64(&mut reader)? as u32),
            offset: varint_read_u64(&mut reader)?,
            chunks: varint_read_u64(&mut reader)?,
            records: varint_read_u64(&mut reader)?,
            segments: varint_read_u64(&mut reader)?,
            events: varint_read_u64(&mut reader)?,
        });
    }
    if !reader.is_at_end() {
        return Err(ContainerError::TrailingBytes {
            what: "the declared entries of an INDEX chunk",
            bytes: reader.remaining(),
        });
    }
    Ok(sections)
}

/// Reads the index footer from a seekable container (file header, trailer
/// and `INDEX` chunk are all validated; the rank sections themselves are
/// not touched).
pub fn read_index<R: Read + Seek>(reader: &mut R) -> Result<ContainerIndex, ContainerError> {
    reader
        .seek(SeekFrom::Start(0))
        .map_err(ContainerError::Io)?;
    let mut stream = ChunkStream::new(&mut *reader, 0);
    let kind = read_header(&mut stream)?;

    let end = reader.seek(SeekFrom::End(0)).map_err(ContainerError::Io)?;
    if end < TRAILER_LEN {
        return Err(ContainerError::BadTrailer);
    }
    reader
        .seek(SeekFrom::End(-(TRAILER_LEN as i64)))
        .map_err(ContainerError::Io)?;
    let mut trailer = [0u8; TRAILER_LEN as usize];
    reader
        .read_exact(&mut trailer)
        .map_err(ContainerError::from)?;
    let (offset_bytes, magic) = trailer.split_at(8);
    if *magic != INDEX_MAGIC {
        return Err(ContainerError::BadTrailer);
    }
    let Some(&offset_bytes) = offset_bytes.first_chunk::<8>() else {
        return Err(ContainerError::BadTrailer);
    };
    let index_offset = u64::from_le_bytes(offset_bytes);
    if index_offset >= end - TRAILER_LEN {
        return Err(ContainerError::BadTrailer);
    }

    reader
        .seek(SeekFrom::Start(index_offset))
        .map_err(ContainerError::Io)?;
    let mut stream = ChunkStream::new(&mut *reader, index_offset);
    let chunk = stream.next_chunk()?;
    if chunk.kind != ChunkKind::Index {
        return Err(ContainerError::UnexpectedChunk {
            expected: "INDEX",
            found: chunk.kind.name(),
        });
    }
    Ok(ContainerIndex {
        kind,
        sections: parse_index_payload(&chunk.payload)?,
    })
}
