//! Error type for the chunked container format.

use std::fmt;
use std::io;

use trace_compress::CompressError;
use trace_model::codec::CodecError;

/// Errors produced while reading or writing a chunked trace container.
#[derive(Debug)]
pub enum ContainerError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// A chunk payload failed to decode with the record codec.
    Codec(CodecError),
    /// A chunk's codec byte named an unknown codec, or its stored payload
    /// was not a valid stream of that codec (despite a matching CRC).
    Compress(CompressError),
    /// The file does not start with a recognized container magic.
    BadMagic {
        /// The magic bytes found at the start of the input.
        found: [u8; 4],
    },
    /// The container version is not supported by this reader.
    UnsupportedVersion(u8),
    /// The payload-kind byte names neither an app nor a reduced trace.
    BadPayloadKind(u8),
    /// A chunk-kind byte has no defined meaning.
    BadChunkKind(u8),
    /// The input ended in the middle of a header, chunk or trailer.
    Truncated {
        /// What was being read when the input ended.
        what: &'static str,
    },
    /// A chunk payload's CRC-32 did not match the framing header.
    BadCrc {
        /// Byte offset of the chunk whose payload is corrupt.
        offset: u64,
        /// The checksum declared in the chunk header.
        expected: u32,
        /// The checksum computed over the payload bytes read.
        found: u32,
    },
    /// The 12-byte trailer is missing or does not end in the index magic.
    BadTrailer,
    /// A chunk arrived where the format forbids it.
    UnexpectedChunk {
        /// What the reader was prepared to accept.
        expected: &'static str,
        /// The chunk kind that actually arrived.
        found: &'static str,
    },
    /// Bytes were left over after the declared items of a payload.
    TrailingBytes {
        /// Which payload carried the extra bytes.
        what: &'static str,
        /// How many undeclared bytes were found.
        bytes: usize,
    },
    /// A declared count disagreed with the items actually present.
    CountMismatch {
        /// What was being counted.
        what: &'static str,
        /// The count declared in the file.
        declared: u64,
        /// The count observed while reading.
        found: u64,
    },
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::Io(e) => write!(f, "container i/o error: {e}"),
            ContainerError::Codec(e) => write!(f, "container payload error: {e}"),
            ContainerError::Compress(e) => write!(f, "container compression error: {e}"),
            ContainerError::BadMagic { found } => {
                write!(f, "not a trace container: bad magic bytes {found:?}")
            }
            ContainerError::UnsupportedVersion(v) => {
                write!(f, "unsupported container version {v}")
            }
            ContainerError::BadPayloadKind(k) => write!(f, "invalid payload kind byte {k}"),
            ContainerError::BadChunkKind(k) => write!(f, "invalid chunk kind byte {k}"),
            ContainerError::Truncated { what } => {
                write!(f, "container truncated while reading {what}")
            }
            ContainerError::BadCrc {
                offset,
                expected,
                found,
            } => write!(
                f,
                "chunk at byte {offset} is corrupt: crc32 {found:#010x}, header says {expected:#010x}"
            ),
            ContainerError::BadTrailer => {
                write!(f, "missing or corrupt index trailer (last 12 bytes)")
            }
            ContainerError::UnexpectedChunk { expected, found } => {
                write!(f, "unexpected {found} chunk, expected {expected}")
            }
            ContainerError::TrailingBytes { what, bytes } => {
                write!(f, "{bytes} trailing bytes after {what}")
            }
            ContainerError::CountMismatch {
                what,
                declared,
                found,
            } => write!(f, "{what}: file declares {declared}, found {found}"),
        }
    }
}

impl std::error::Error for ContainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContainerError::Io(e) => Some(e),
            ContainerError::Codec(e) => Some(e),
            ContainerError::Compress(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ContainerError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ContainerError::Truncated { what: "chunk data" }
        } else {
            ContainerError::Io(e)
        }
    }
}

impl From<CodecError> for ContainerError {
    fn from(e: CodecError) -> Self {
        ContainerError::Codec(e)
    }
}

impl From<CompressError> for ContainerError {
    fn from(e: CompressError) -> Self {
        ContainerError::Compress(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ContainerError::BadCrc {
            offset: 42,
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("byte 42"), "{e}");
        let e = ContainerError::from(io::Error::from(io::ErrorKind::UnexpectedEof));
        assert!(matches!(e, ContainerError::Truncated { .. }), "{e}");
        let e = ContainerError::from(CodecError::UnexpectedEof);
        assert!(e.to_string().contains("payload"), "{e}");
        let e = ContainerError::from(CompressError::UnknownCodec(7));
        assert!(e.to_string().contains("compression"), "{e}");
    }
}
