//! Streaming container writer.
//!
//! [`ChunkWriter`] emits a `.trc` v2 container incrementally over any
//! [`std::io::Write`] sink: records (or stored segments / executions) are
//! encoded into an in-memory chunk buffer and flushed as a framed,
//! CRC-checked chunk whenever the configured chunk size is reached, so the
//! writer's resident state is O(one chunk) regardless of trace length.
//! Chunk offsets are tracked as bytes go out, which is what lets the
//! seekable index footer be written at the end without ever seeking.

use std::io::{self, Write};

use trace_compress::{compress_observed, Codec};
use trace_model::codec::varint::write_u64 as varint_write_u64;
use trace_model::codec::{
    write_exec, write_record, write_stored_segment, write_string, write_string_table,
};
use trace_model::{AppTrace, Rank, ReducedAppTrace, SegmentExec, StoredSegment, Time, TraceRecord};

use crate::index::RankSectionEntry;
use crate::layout::{write_chunk, write_header, ChunkKind, PayloadKind, INDEX_MAGIC};

/// How records are grouped into chunks, and which codec their payloads are
/// stored under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkSpec {
    /// Completed segments per `RECORDS` chunk (app payloads), and stored
    /// representatives per `STORED` chunk (reduced payloads).  A chunk is
    /// cut at the first segment boundary at or past this count, so chunks
    /// always hold whole segments; `1` gives one segment per chunk.
    pub segments_per_chunk: usize,
    /// Executions per `EXECS` chunk (reduced payloads only).  Executions
    /// are a few bytes each, so they pack much denser than segments.
    pub execs_per_chunk: usize,
    /// Codec payload chunks are compressed under before CRC framing
    /// (control chunks are always stored raw).  Each chunk keeps its own
    /// codec byte: when the compressed form is not smaller, that chunk is
    /// stored raw under [`Codec::None`] instead.
    pub codec: Codec,
}

impl Default for ChunkSpec {
    fn default() -> Self {
        ChunkSpec {
            segments_per_chunk: 128,
            execs_per_chunk: 4096,
            codec: Codec::None,
        }
    }
}

impl ChunkSpec {
    /// A spec with `segments_per_chunk` segments per chunk (0 is treated
    /// as 1) and the default execution packing.
    pub fn with_segments(segments_per_chunk: usize) -> Self {
        ChunkSpec {
            segments_per_chunk: segments_per_chunk.max(1),
            ..ChunkSpec::default()
        }
    }

    /// The default chunk grouping with payload chunks compressed under
    /// `codec`.
    pub fn with_codec(codec: Codec) -> Self {
        ChunkSpec {
            codec,
            ..ChunkSpec::default()
        }
    }

    /// Returns the spec with its codec replaced.
    pub fn codec(self, codec: Codec) -> Self {
        ChunkSpec { codec, ..self }
    }
}

/// Counting adapter so chunk offsets are known without seeking.
struct CountingWriter<W> {
    inner: W,
    written: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

struct SectionState {
    rank: Rank,
    offset: u64,
    chunks: u64,
    records: u64,
    segments: u64,
    events: u64,
    /// Reduced sections write all STORED chunks before any EXECS chunk;
    /// this latches once the first execution arrives.
    exec_phase: bool,
}

/// Streaming writer for chunked container files.
///
/// App payloads: [`ChunkWriter::app`], then per rank
/// [`ChunkWriter::begin_rank`] → [`ChunkWriter::record`]… →
/// [`ChunkWriter::end_rank`], then [`ChunkWriter::finish`].
/// Reduced payloads use [`ChunkWriter::reduced`] with
/// [`ChunkWriter::stored`] / [`ChunkWriter::exec`] inside the section.
pub struct ChunkWriter<W: Write> {
    out: CountingWriter<W>,
    kind: PayloadKind,
    spec: ChunkSpec,
    declared_ranks: usize,
    /// Encoded items of the chunk being assembled (without the leading
    /// count varint, which is prepended at flush time).
    body: Vec<u8>,
    items_in_chunk: u64,
    segments_in_chunk: usize,
    prev_time: Time,
    section: Option<SectionState>,
    sections: Vec<RankSectionEntry>,
    obs: trace_obs::ObsShard,
}

impl<W: Write> ChunkWriter<W> {
    fn new(
        out: W,
        kind: PayloadKind,
        name: &str,
        rank_count: usize,
        regions: &[String],
        contexts: &[String],
        spec: ChunkSpec,
    ) -> io::Result<Self> {
        let mut out = CountingWriter {
            inner: out,
            written: 0,
        };
        write_header(&mut out, kind)?;
        let mut preamble = Vec::new();
        write_string(&mut preamble, name);
        write_string_table(&mut preamble, regions);
        write_string_table(&mut preamble, contexts);
        varint_write_u64(&mut preamble, rank_count as u64);
        write_chunk(&mut out, ChunkKind::Preamble, Codec::None, &preamble)?;
        Ok(ChunkWriter {
            out,
            kind,
            spec: ChunkSpec {
                segments_per_chunk: spec.segments_per_chunk.max(1),
                execs_per_chunk: spec.execs_per_chunk.max(1),
                codec: spec.codec,
            },
            declared_ranks: rank_count,
            body: Vec::new(),
            items_in_chunk: 0,
            segments_in_chunk: 0,
            prev_time: Time::ZERO,
            section: None,
            sections: Vec::new(),
            obs: trace_obs::ObsShard::disabled(),
        })
    }

    /// Attaches an observability shard: subsequent chunk flushes record
    /// [`trace_obs::Stage::Compress`] spans, `chunk.writes` and per-codec
    /// stored/raw byte counters.  The shard flushes to its recorder when
    /// the writer is finished or dropped.
    pub fn set_obs(&mut self, obs: trace_obs::ObsShard) {
        self.obs = obs;
    }

    /// Starts an application-trace container (header + preamble chunk).
    pub fn app(
        out: W,
        name: &str,
        rank_count: usize,
        regions: &[String],
        contexts: &[String],
        spec: ChunkSpec,
    ) -> io::Result<Self> {
        Self::new(
            out,
            PayloadKind::App,
            name,
            rank_count,
            regions,
            contexts,
            spec,
        )
    }

    /// Starts a reduced-trace container (header + preamble chunk).
    pub fn reduced(
        out: W,
        name: &str,
        rank_count: usize,
        regions: &[String],
        contexts: &[String],
        spec: ChunkSpec,
    ) -> io::Result<Self> {
        Self::new(
            out,
            PayloadKind::Reduced,
            name,
            rank_count,
            regions,
            contexts,
            spec,
        )
    }

    fn state_error(what: &str) -> io::Error {
        io::Error::other(format!("container writer misuse: {what}"))
    }

    /// Writes the buffered items as one framed chunk of `kind`,
    /// compressing the payload under the spec's codec when that makes it
    /// smaller (the chunk's codec byte records what actually happened).
    fn flush_chunk(&mut self, kind: ChunkKind) -> io::Result<()> {
        if self.items_in_chunk == 0 {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(self.body.len() + 4);
        varint_write_u64(&mut payload, self.items_in_chunk);
        payload.extend_from_slice(&self.body);
        // The codec byte actually written (after the raw fallback decided)
        // and the stored payload length, for the per-codec counters.
        let (stored_codec, stored_len) = if self.spec.codec == Codec::None {
            write_chunk(&mut self.out, kind, Codec::None, &payload)?;
            (Codec::None, payload.len())
        } else {
            // The payload was just produced by the row codec, so the
            // transform cannot fail; surface the impossible as io::Error
            // rather than panicking.
            let packed = compress_observed(
                self.spec.codec,
                kind.payload_class(),
                &payload,
                &mut self.obs,
            )
            .map_err(|e| io::Error::other(format!("chunk compression failed: {e}")))?;
            if packed.len() < payload.len() {
                write_chunk(&mut self.out, kind, self.spec.codec, &packed)?;
                (self.spec.codec, packed.len())
            } else {
                self.obs.add(trace_obs::names::CHUNK_COMPRESS_FALLBACKS, 1);
                write_chunk(&mut self.out, kind, Codec::None, &payload)?;
                (Codec::None, payload.len())
            }
        };
        if self.obs.is_enabled() {
            let name = stored_codec.name();
            self.obs.add(trace_obs::names::CHUNK_WRITES, 1);
            self.obs.add(trace_obs::names::codec_chunks(name), 1);
            self.obs.add(
                trace_obs::names::codec_raw_bytes(name),
                payload.len() as u64,
            );
            self.obs.add(
                trace_obs::names::codec_stored_bytes(name),
                stored_len as u64,
            );
        }
        let Some(section) = self.section.as_mut() else {
            return Err(Self::state_error("chunk flushed outside a rank section"));
        };
        section.chunks += 1;
        self.body.clear();
        self.items_in_chunk = 0;
        self.segments_in_chunk = 0;
        self.prev_time = Time::ZERO;
        Ok(())
    }

    fn pending_chunk_kind(&self) -> ChunkKind {
        match self.kind {
            PayloadKind::App => ChunkKind::Records,
            PayloadKind::Reduced => {
                if self.section.as_ref().is_some_and(|s| s.exec_phase) {
                    ChunkKind::Execs
                } else {
                    ChunkKind::Stored
                }
            }
        }
    }

    /// Opens a rank section.
    pub fn begin_rank(&mut self, rank: Rank) -> io::Result<()> {
        if self.section.is_some() {
            return Err(Self::state_error("begin_rank inside an open section"));
        }
        let offset = self.out.written;
        let mut payload = Vec::new();
        varint_write_u64(&mut payload, u64::from(rank.as_u32()));
        write_chunk(&mut self.out, ChunkKind::RankBegin, Codec::None, &payload)?;
        self.section = Some(SectionState {
            rank,
            offset,
            chunks: 0,
            records: 0,
            segments: 0,
            events: 0,
            exec_phase: false,
        });
        Ok(())
    }

    /// Appends one raw trace record to the open rank section (app payloads
    /// only).  Chunks are cut at segment boundaries.
    pub fn record(&mut self, record: &TraceRecord) -> io::Result<()> {
        if self.kind != PayloadKind::App {
            return Err(Self::state_error("record on a reduced container"));
        }
        let Some(section) = self.section.as_mut() else {
            return Err(Self::state_error("record outside a rank section"));
        };
        self.prev_time = write_record(&mut self.body, record, self.prev_time);
        self.items_in_chunk += 1;
        section.records += 1;
        match record {
            TraceRecord::Event(_) => section.events += 1,
            TraceRecord::SegmentEnd { .. } => {
                section.segments += 1;
                self.segments_in_chunk += 1;
            }
            TraceRecord::SegmentBegin { .. } => {}
        }
        if self.segments_in_chunk >= self.spec.segments_per_chunk {
            self.flush_chunk(ChunkKind::Records)?;
        }
        Ok(())
    }

    /// Appends one stored representative segment to the open rank section
    /// (reduced payloads only; all stored segments precede all executions).
    pub fn stored(&mut self, stored: &StoredSegment) -> io::Result<()> {
        if self.kind != PayloadKind::Reduced {
            return Err(Self::state_error("stored on an app container"));
        }
        let Some(section) = self.section.as_mut() else {
            return Err(Self::state_error("stored outside a rank section"));
        };
        if section.exec_phase {
            return Err(Self::state_error("stored segment after executions"));
        }
        section.records += 1;
        section.segments += 1;
        write_stored_segment(&mut self.body, stored);
        self.items_in_chunk += 1;
        self.segments_in_chunk += 1;
        if self.segments_in_chunk >= self.spec.segments_per_chunk {
            self.flush_chunk(ChunkKind::Stored)?;
        }
        Ok(())
    }

    /// Appends one segment execution to the open rank section (reduced
    /// payloads only).
    pub fn exec(&mut self, exec: &SegmentExec) -> io::Result<()> {
        if self.kind != PayloadKind::Reduced {
            return Err(Self::state_error("exec on an app container"));
        }
        let Some(section) = self.section.as_ref() else {
            return Err(Self::state_error("exec outside a rank section"));
        };
        if !section.exec_phase {
            self.flush_chunk(ChunkKind::Stored)?;
            if let Some(section) = self.section.as_mut() {
                section.exec_phase = true;
            }
        }
        self.prev_time = write_exec(&mut self.body, exec, self.prev_time);
        self.items_in_chunk += 1;
        let Some(section) = self.section.as_mut() else {
            return Err(Self::state_error("exec outside a rank section"));
        };
        section.records += 1;
        section.events += 1;
        if self.items_in_chunk >= self.spec.execs_per_chunk as u64 {
            self.flush_chunk(ChunkKind::Execs)?;
        }
        Ok(())
    }

    /// Closes the open rank section, flushing the partial chunk and writing
    /// the `RANK_END` summary.
    pub fn end_rank(&mut self) -> io::Result<()> {
        let kind = self.pending_chunk_kind();
        // An empty pending chunk makes this a no-op, so a missing section
        // falls through to the state error below.
        self.flush_chunk(kind)?;
        let Some(section) = self.section.take() else {
            return Err(Self::state_error("end_rank outside a rank section"));
        };
        let mut payload = Vec::new();
        varint_write_u64(&mut payload, u64::from(section.rank.as_u32()));
        varint_write_u64(&mut payload, section.chunks);
        varint_write_u64(&mut payload, section.records);
        varint_write_u64(&mut payload, section.segments);
        varint_write_u64(&mut payload, section.events);
        write_chunk(&mut self.out, ChunkKind::RankEnd, Codec::None, &payload)?;
        self.sections.push(RankSectionEntry {
            rank: section.rank,
            offset: section.offset,
            chunks: section.chunks,
            records: section.records,
            segments: section.segments,
            events: section.events,
        });
        Ok(())
    }

    /// Writes the index chunk and trailer, flushes, and returns the sink.
    pub fn finish(mut self) -> io::Result<W> {
        if self.section.is_some() {
            return Err(Self::state_error("finish inside an open rank section"));
        }
        if self.sections.len() != self.declared_ranks {
            return Err(Self::state_error(&format!(
                "{} rank sections written, preamble declares {}",
                self.sections.len(),
                self.declared_ranks
            )));
        }
        let index_offset = self.out.written;
        let mut payload = Vec::new();
        varint_write_u64(&mut payload, self.sections.len() as u64);
        for entry in &self.sections {
            varint_write_u64(&mut payload, u64::from(entry.rank.as_u32()));
            varint_write_u64(&mut payload, entry.offset);
            varint_write_u64(&mut payload, entry.chunks);
            varint_write_u64(&mut payload, entry.records);
            varint_write_u64(&mut payload, entry.segments);
            varint_write_u64(&mut payload, entry.events);
        }
        write_chunk(&mut self.out, ChunkKind::Index, Codec::None, &payload)?;
        self.out.write_all(&index_offset.to_le_bytes())?;
        self.out.write_all(&INDEX_MAGIC)?;
        self.out.flush()?;
        Ok(self.out.inner)
    }
}

/// Writes `app` as a chunked container to `out` and returns the sink.
pub fn write_app_container<W: Write>(out: W, app: &AppTrace, spec: ChunkSpec) -> io::Result<W> {
    write_app_container_obs(out, app, spec, trace_obs::ObsShard::disabled())
}

/// [`write_app_container`] with observability: the writer records
/// per-chunk compression spans and chunk/codec byte counters into `obs`
/// (see [`ChunkWriter::set_obs`]).  The encoded bytes are identical.
pub fn write_app_container_obs<W: Write>(
    out: W,
    app: &AppTrace,
    spec: ChunkSpec,
    obs: trace_obs::ObsShard,
) -> io::Result<W> {
    let mut writer = ChunkWriter::app(
        out,
        &app.name,
        app.rank_count(),
        app.regions.names(),
        app.contexts.names(),
        spec,
    )?;
    writer.set_obs(obs);
    for rank in &app.ranks {
        writer.begin_rank(rank.rank)?;
        for record in &rank.records {
            writer.record(record)?;
        }
        writer.end_rank()?;
    }
    writer.finish()
}

/// Writes `reduced` as a chunked container to `out` and returns the sink.
pub fn write_reduced_container<W: Write>(
    out: W,
    reduced: &ReducedAppTrace,
    spec: ChunkSpec,
) -> io::Result<W> {
    write_reduced_container_obs(out, reduced, spec, trace_obs::ObsShard::disabled())
}

/// [`write_reduced_container`] with observability (see
/// [`write_app_container_obs`]).
pub fn write_reduced_container_obs<W: Write>(
    out: W,
    reduced: &ReducedAppTrace,
    spec: ChunkSpec,
    obs: trace_obs::ObsShard,
) -> io::Result<W> {
    let mut writer = ChunkWriter::reduced(
        out,
        &reduced.name,
        reduced.rank_count(),
        reduced.regions.names(),
        reduced.contexts.names(),
        spec,
    )?;
    writer.set_obs(obs);
    for rank in &reduced.ranks {
        writer.begin_rank(rank.rank)?;
        for stored in &rank.stored {
            writer.stored(stored)?;
        }
        for exec in &rank.execs {
            writer.exec(exec)?;
        }
        writer.end_rank()?;
    }
    writer.finish()
}

/// Encodes `app` as a chunked container into a byte buffer.
pub fn encode_app_container(app: &AppTrace, spec: ChunkSpec) -> Vec<u8> {
    encode_app_container_obs(app, spec, trace_obs::ObsShard::disabled())
}

/// [`encode_app_container`] with observability (see
/// [`write_app_container_obs`]).
#[allow(clippy::expect_used)]
pub fn encode_app_container_obs(
    app: &AppTrace,
    spec: ChunkSpec,
    obs: trace_obs::ObsShard,
) -> Vec<u8> {
    // lint:allow(expect) -- Vec<u8> as a Write sink is infallible and the writer is driven in order
    write_app_container_obs(Vec::new(), app, spec, obs).expect("writing to a Vec cannot fail")
}

/// Encodes `reduced` as a chunked container into a byte buffer.
pub fn encode_reduced_container(reduced: &ReducedAppTrace, spec: ChunkSpec) -> Vec<u8> {
    encode_reduced_container_obs(reduced, spec, trace_obs::ObsShard::disabled())
}

/// [`encode_reduced_container`] with observability (see
/// [`write_app_container_obs`]).
#[allow(clippy::expect_used)]
pub fn encode_reduced_container_obs(
    reduced: &ReducedAppTrace,
    spec: ChunkSpec,
    obs: trace_obs::ObsShard,
) -> Vec<u8> {
    write_reduced_container_obs(Vec::new(), reduced, spec, obs)
        // lint:allow(expect) -- Vec<u8> as a Write sink is infallible and the writer is driven in order
        .expect("writing to a Vec cannot fail")
}
