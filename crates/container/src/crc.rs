//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), the checksum every chunk
//! payload carries.
//!
//! Implemented locally because the build environment has no crates
//! registry; the table-driven byte-at-a-time form is plenty fast for the
//! chunk sizes the container writes (a chunk is hashed once on write and
//! once on read).

/// Lazily built 256-entry lookup table for the reflected polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Computes the IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &byte in bytes {
        // lint:allow(indexing) -- the index is masked to 0..=255 and the table has 256 entries
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"chunk payload bytes".to_vec();
        let baseline = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), baseline, "flip at byte {i} bit {bit}");
            }
        }
    }
}
