#![forbid(unsafe_code)]
//! Chunked, indexed binary trace container (`.trc` v2).
//!
//! The monolithic v1 codec in `trace_model::codec` can only decode a fully
//! materialized byte buffer, which reintroduces the memory wall the
//! stored-segments technique exists to avoid.  This crate wraps the same
//! varint record encoding in a *chunked* container so binary traces become
//! streamable and seekable:
//!
//! * records are framed into length-prefixed, CRC-32-checked chunks, cut at
//!   segment boundaries and grouped by rank section
//!   ([`writer::ChunkWriter`] — `io::Write`-based, O(one chunk) resident);
//! * a chunk-index footer maps every rank section to its byte offset and
//!   summary counts ([`index::read_index`]), so a seekable consumer can
//!   hand whole rank sections to parallel workers without scanning;
//! * [`reader::ChunkReader`] pulls records one at a time over any
//!   `io::Read` source (the binary analogue of the text stream parser),
//!   and [`reader::ChunkReader::section`] resumes at an indexed offset;
//! * v1 monolithic files still round-trip through the fallback decoders
//!   [`reader::decode_app_any`] / [`reader::decode_reduced_any`], keyed by
//!   the magic bytes;
//! * every chunk carries a codec byte: payload chunks can be stored under
//!   any `trace_compress` [`Codec`] (column transforms, LZ, or both), with
//!   the writer falling back to [`Codec::None`] per chunk when compression
//!   does not pay, and the reader decompressing transparently into the same
//!   one-chunk-resident streaming path.
//!
//! The byte-level layout is specified in `docs/container-format.md` at the
//! repository root and mirrored by [`layout`].
//!
//! # Quick start
//!
//! ```
//! use trace_container::{encode_app_container, read_app_container, ChunkSpec};
//! use trace_sim::{SizePreset, Workload, WorkloadKind};
//!
//! let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
//! let bytes = encode_app_container(&app, ChunkSpec::with_segments(16));
//! assert_eq!(read_app_container(&bytes[..]).unwrap(), app);
//! ```

#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod index;
pub mod layout;
pub mod reader;
pub mod writer;

pub use crc::crc32;
pub use error::ContainerError;
pub use index::{read_index, ContainerIndex, RankSectionEntry};
pub use layout::{ChunkKind, PayloadKind, CONTAINER_MAGIC, CONTAINER_VERSION, INDEX_MAGIC};
pub use reader::{
    decode_app_any, decode_reduced_any, read_app_container, read_reduced_container, ChunkReader,
    ContainerItem, Preamble,
};
pub use trace_compress::{Codec, CompressError};
pub use writer::{
    encode_app_container, encode_app_container_obs, encode_reduced_container,
    encode_reduced_container_obs, write_app_container, write_app_container_obs,
    write_reduced_container, write_reduced_container_obs, ChunkSpec, ChunkWriter,
};

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::codec::{encode_app_trace, encode_reduced_trace};
    use trace_reduce::{Method, Reducer};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    #[test]
    fn app_container_round_trips_across_chunk_sizes() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        for segments_per_chunk in [1, 2, 7, usize::MAX] {
            let bytes = encode_app_container(&app, ChunkSpec::with_segments(segments_per_chunk));
            let decoded = read_app_container(&bytes[..]).unwrap();
            assert_eq!(decoded, app, "{segments_per_chunk} segments/chunk");
        }
    }

    #[test]
    fn reduced_container_round_trips() {
        let app = Workload::new(WorkloadKind::EarlyGather, SizePreset::Tiny).generate();
        let reduced = Reducer::with_default_threshold(Method::AvgWave).reduce_app(&app);
        for segments_per_chunk in [1, 5, usize::MAX] {
            let bytes =
                encode_reduced_container(&reduced, ChunkSpec::with_segments(segments_per_chunk));
            let decoded = read_reduced_container(&bytes[..]).unwrap();
            assert_eq!(decoded, reduced, "{segments_per_chunk} segments/chunk");
        }
    }

    #[test]
    fn index_lists_every_rank_section_with_valid_offsets() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let bytes = encode_app_container(&app, ChunkSpec::with_segments(4));
        let mut cursor = std::io::Cursor::new(&bytes);
        let index = read_index(&mut cursor).unwrap();
        assert_eq!(index.kind, PayloadKind::App);
        assert_eq!(index.sections.len(), app.rank_count());
        for (entry, rank) in index.sections.iter().zip(&app.ranks) {
            assert_eq!(entry.rank, rank.rank);
            assert_eq!(entry.records, rank.records.len() as u64);
            assert_eq!(entry.events, rank.events().count() as u64);
            // A section reader resumed at the indexed offset yields exactly
            // that rank's records.
            let mut section = ChunkReader::section(&bytes[entry.offset as usize..], entry.offset);
            let Some(ContainerItem::RankStart(r)) = section.next_item().unwrap() else {
                panic!("section must open with RankStart");
            };
            assert_eq!(r, rank.rank);
            let mut records = Vec::new();
            while let Some(item) = section.next_item().unwrap() {
                if let ContainerItem::Record(record) = item {
                    records.push(record);
                }
            }
            assert_eq!(records, rank.records);
            assert_eq!(section.ranks_seen(), 1);
        }
    }

    #[test]
    fn v1_fallback_decodes_monolithic_files() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let v1 = encode_app_trace(&app);
        assert_eq!(decode_app_any(&v1).unwrap(), app);
        let v2 = encode_app_container(&app, ChunkSpec::default());
        assert_eq!(decode_app_any(&v2).unwrap(), app);

        let reduced = Reducer::with_default_threshold(Method::RelDiff).reduce_app(&app);
        let v1 = encode_reduced_trace(&reduced);
        assert_eq!(decode_reduced_any(&v1).unwrap(), reduced);
        let v2 = encode_reduced_container(&reduced, ChunkSpec::default());
        assert_eq!(decode_reduced_any(&v2).unwrap(), reduced);

        assert!(matches!(
            decode_app_any(b"BOGUSBYTES"),
            Err(ContainerError::BadMagic { .. })
        ));
        assert!(matches!(
            decode_app_any(b"TR"),
            Err(ContainerError::Truncated { .. })
        ));
    }

    #[test]
    fn compressed_containers_round_trip_and_shrink() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let baseline = encode_app_container(&app, ChunkSpec::default());
        for codec in [Codec::Delta, Codec::Lz, Codec::DeltaLz] {
            let bytes = encode_app_container(&app, ChunkSpec::with_codec(codec));
            assert_eq!(
                read_app_container(&bytes[..]).unwrap(),
                app,
                "{}",
                codec.name()
            );
            // The per-chunk raw fallback guarantees compression never
            // expands a container; the byte-compressing codecs must
            // strictly shrink even this tiny trace (the column transform
            // alone is a size-neutral reordering whose value shows once
            // LZ runs over the homogeneous streams).
            assert!(
                bytes.len() <= baseline.len(),
                "{}: {} vs uncompressed {}",
                codec.name(),
                bytes.len(),
                baseline.len()
            );
            if codec != Codec::Delta {
                assert!(
                    bytes.len() < baseline.len(),
                    "{}: {} vs uncompressed {}",
                    codec.name(),
                    bytes.len(),
                    baseline.len()
                );
            }
        }

        let reduced = Reducer::with_default_threshold(Method::AvgWave).reduce_app(&app);
        for codec in Codec::ALL {
            let bytes = encode_reduced_container(&reduced, ChunkSpec::with_codec(codec));
            assert_eq!(
                read_reduced_container(&bytes[..]).unwrap(),
                reduced,
                "{}",
                codec.name()
            );
        }
    }

    #[test]
    fn compressed_sections_resume_via_the_index() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let bytes = encode_app_container(&app, ChunkSpec::with_segments(2).codec(Codec::DeltaLz));
        let mut cursor = std::io::Cursor::new(&bytes);
        let index = read_index(&mut cursor).unwrap();
        for (entry, rank) in index.sections.iter().zip(&app.ranks) {
            let mut section = ChunkReader::section(&bytes[entry.offset as usize..], entry.offset);
            let mut records = Vec::new();
            while let Some(item) = section.next_item().unwrap() {
                if let ContainerItem::Record(record) = item {
                    records.push(record);
                }
            }
            assert_eq!(records, rank.records, "rank {:?}", entry.rank);
        }
    }

    #[test]
    fn skip_current_rank_passes_over_sections() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let bytes = encode_app_container(&app, ChunkSpec::with_segments(2));
        let mut reader = ChunkReader::new(&bytes[..]).unwrap();
        let mut skipped = 0;
        while let Some(item) = reader.next_item().unwrap() {
            if let ContainerItem::RankStart(rank) = item {
                assert_eq!(reader.skip_current_rank().unwrap(), rank);
                skipped += 1;
            }
        }
        assert_eq!(skipped, app.rank_count());
        assert_eq!(reader.ranks_seen(), app.rank_count());
    }

    #[test]
    fn small_chunks_bound_the_readers_resident_payload() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let bytes = encode_app_container(&app, ChunkSpec::with_segments(1));
        let mut reader = ChunkReader::new(&bytes[..]).unwrap();
        while reader.next_item().unwrap().is_some() {}
        // One segment per chunk: the peak buffered payload is far below the
        // whole file (which the monolithic v1 decoder would materialize).
        assert!(
            reader.peak_chunk_bytes() * 10 <= bytes.len(),
            "peak chunk {} vs file {}",
            reader.peak_chunk_bytes(),
            bytes.len()
        );
    }
}
