//! Property tests for the chunked container: round-trips across chunk-size
//! and codec grids for randomized traces, and corruption (truncation, bit
//! flips, bad magic/version/codec/trailer) yielding typed errors, never
//! panics or silent misreads.

use proptest::prelude::*;
use trace_container::{
    decode_app_any, encode_app_container, encode_reduced_container, read_app_container, read_index,
    read_reduced_container, ChunkSpec, Codec, ContainerError,
};
use trace_reduce::{Method, MethodConfig, Reducer};
use trace_sim::specgen::{trace_from_specs, SegmentSpec};

fn build_trace(rank_specs: &[Vec<SegmentSpec>]) -> trace_model::AppTrace {
    trace_from_specs("containerprop", rank_specs)
}

/// The chunk-size grid: one segment per chunk, small primes, and
/// effectively whole-rank chunks.
const CHUNK_GRID: [usize; 5] = [1, 2, 3, 17, usize::MAX];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn app_traces_round_trip_across_the_chunk_and_codec_grids(rank_specs in prop::collection::vec(
        prop::collection::vec((0u8..4, 0u8..4, 0u16..2000), 0..10),
        1..4,
    )) {
        let app = build_trace(&rank_specs);
        prop_assert!(app.is_well_formed());
        for segments_per_chunk in CHUNK_GRID {
            for codec in Codec::ALL {
                let spec = ChunkSpec::with_segments(segments_per_chunk).codec(codec);
                let bytes = encode_app_container(&app, spec);
                let decoded = read_app_container(&bytes[..]).expect("round trip");
                prop_assert_eq!(
                    &decoded, &app,
                    "{} segments/chunk, codec {}",
                    segments_per_chunk, codec.name()
                );
                // The fallback dispatcher agrees on v2 input.
                prop_assert_eq!(&decode_app_any(&bytes).expect("dispatch"), &app);
            }
        }
    }

    #[test]
    fn reduced_traces_round_trip_across_the_chunk_and_codec_grids(rank_specs in prop::collection::vec(
        prop::collection::vec((0u8..4, 0u8..4, 0u16..2000), 1..10),
        1..4,
    )) {
        let app = build_trace(&rank_specs);
        let reduced = Reducer::new(MethodConfig::with_default_threshold(Method::RelDiff))
            .reduce_app(&app);
        for segments_per_chunk in CHUNK_GRID {
            for codec in Codec::ALL {
                let spec = ChunkSpec::with_segments(segments_per_chunk).codec(codec);
                let bytes = encode_reduced_container(&reduced, spec);
                let decoded = read_reduced_container(&bytes[..]).expect("round trip");
                prop_assert_eq!(
                    &decoded, &reduced,
                    "{} segments/chunk, codec {}",
                    segments_per_chunk, codec.name()
                );
            }
        }
    }

    #[test]
    fn truncation_at_any_point_is_a_typed_error(rank_specs in prop::collection::vec(
        prop::collection::vec((0u8..4, 0u8..4, 0u16..500), 1..6),
        1..3,
    ), cut_fraction in 0.0f64..1.0) {
        let app = build_trace(&rank_specs);
        for codec in [Codec::None, Codec::DeltaLz] {
            let bytes = encode_app_container(&app, ChunkSpec::with_segments(2).codec(codec));
            let cut = ((bytes.len() - 1) as f64 * cut_fraction) as usize;
            // Every proper prefix must fail to decode — the trailer check
            // makes even "clean" chunk-boundary cuts detectable.
            let err = read_app_container(&bytes[..cut]).expect_err("truncated");
            prop_assert!(
                matches!(
                    err,
                    ContainerError::Truncated { .. }
                        | ContainerError::BadMagic { .. }
                        | ContainerError::Codec(_)
                        | ContainerError::Compress(_)
                        | ContainerError::BadTrailer
                        | ContainerError::CountMismatch { .. }
                        | ContainerError::UnexpectedChunk { .. }
                ),
                "unexpected error class: {:?}",
                err
            );
        }
    }
}

#[test]
fn payload_corruption_is_detected_by_crc() {
    let app = build_trace(&[vec![(0, 0, 10), (0, 0, 12), (1, 1, 40)], vec![(1, 2, 7)]]);
    for codec in [Codec::None, Codec::DeltaLz] {
        let bytes = encode_app_container(&app, ChunkSpec::with_segments(1).codec(codec));
        // Flip one bit in every byte position past the header in turn;
        // decoding must never succeed with a *different* trace, and payload
        // flips must surface as BadCrc — the CRC covers the *stored* bytes,
        // so corruption is caught before decompression even runs (framing
        // flips may show up as other typed errors, e.g. a flipped codec
        // byte is an unknown-codec Compress error).
        let mut crc_errors = 0usize;
        for pos in 6..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            match read_app_container(&corrupt[..]) {
                Ok(decoded) => assert_eq!(
                    decoded,
                    app,
                    "byte {pos}: corruption decoded to a different trace ({})",
                    codec.name()
                ),
                Err(ContainerError::BadCrc { .. }) => crc_errors += 1,
                Err(_) => {}
            }
        }
        assert!(
            crc_errors * 2 > bytes.len() - 6,
            "most single-bit flips should be CRC-detected ({}): {crc_errors} of {}",
            codec.name(),
            bytes.len() - 6
        );
    }
}

#[test]
fn crafted_compressed_payloads_with_valid_crcs_are_typed_errors() {
    // Build a delta-lz container, then splice garbage into a compressed
    // RECORDS payload *with a recomputed CRC*: the framing is pristine, the
    // CRC matches, and only the codec layer can reject it.
    let app = build_trace(&[(0..12).map(|i| (0u8, 0u8, (50 + i * 13) as u16)).collect()]);
    let bytes = encode_app_container(
        &app,
        ChunkSpec::with_segments(usize::MAX).codec(Codec::DeltaLz),
    );
    let (header, mut chunks, trailer) = split_chunks(&bytes);
    let records_pos = chunks
        .iter()
        .position(|c| c[0] == 3 && c[1] == Codec::DeltaLz.as_byte())
        .expect("a compressed RECORDS chunk");
    {
        let chunk = &mut chunks[records_pos];
        // Truncate the compressed payload by one byte and re-frame it.
        let new_payload = chunk[10..chunk.len() - 1].to_vec();
        let len = (new_payload.len() as u32).to_le_bytes();
        let crc = trace_container::crc32(&new_payload).to_le_bytes();
        chunk.truncate(2);
        chunk.extend_from_slice(&len);
        chunk.extend_from_slice(&crc);
        chunk.extend_from_slice(&new_payload);
    }
    let mut crafted = header;
    let mut index_offset = crafted.len() as u64;
    for (i, chunk) in chunks.iter().enumerate() {
        if i + 1 == chunks.len() {
            index_offset = crafted.len() as u64;
        }
        crafted.extend_from_slice(chunk);
    }
    crafted.extend_from_slice(&index_offset.to_le_bytes());
    crafted.extend_from_slice(&trailer[8..]);

    let err = read_app_container(&crafted[..]).expect_err("crafted payload");
    assert!(matches!(err, ContainerError::Compress(_)), "{err:?}");
}

#[test]
fn bad_magic_version_and_trailer_are_typed_errors() {
    let app = build_trace(&[vec![(0, 0, 1)]]);
    let bytes = encode_app_container(&app, ChunkSpec::default());

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        read_app_container(&bad_magic[..]),
        Err(ContainerError::BadMagic { .. })
    ));

    let mut bad_version = bytes.clone();
    bad_version[4] = 99;
    assert!(matches!(
        read_app_container(&bad_version[..]),
        Err(ContainerError::UnsupportedVersion(99))
    ));

    let mut bad_trailer = bytes.clone();
    let last = bad_trailer.len() - 1;
    bad_trailer[last] = b'?';
    let mut cursor = std::io::Cursor::new(&bad_trailer);
    assert!(matches!(
        read_index(&mut cursor),
        Err(ContainerError::BadTrailer)
    ));
    // The sequential reader also validates the trailer after the index.
    assert!(read_app_container(&bad_trailer[..]).is_err());

    // An app container is not accepted where a reduced trace is expected.
    assert!(matches!(
        read_reduced_container(&bytes[..]),
        Err(ContainerError::UnexpectedChunk { .. })
    ));
}

#[test]
fn index_offsets_survive_every_chunk_size() {
    let app = build_trace(&[
        (0..12)
            .map(|i| (0u8, (i % 3) as u8, (i * 31) as u16))
            .collect(),
        (0..7)
            .map(|i| (1u8, (i % 2) as u8, (i * 57) as u16))
            .collect(),
        vec![(0, 1, 3)],
    ]);
    for segments_per_chunk in CHUNK_GRID {
        let bytes = encode_app_container(&app, ChunkSpec::with_segments(segments_per_chunk));
        let mut cursor = std::io::Cursor::new(&bytes);
        let index = read_index(&mut cursor).unwrap();
        assert_eq!(index.sections.len(), app.rank_count());
        for (entry, rank) in index.sections.iter().zip(&app.ranks) {
            assert_eq!(entry.rank, rank.rank);
            assert_eq!(entry.records, rank.records.len() as u64);
            assert_eq!(entry.segments, rank.segment_instance_count() as u64);
            assert!(entry.offset < bytes.len() as u64);
        }
    }
}

/// Splits a container file into `(header, framed chunks, trailer)` using
/// only the public framing layout (kind byte + codec byte + u32le length +
/// u32le CRC).
fn split_chunks(bytes: &[u8]) -> (Vec<u8>, Vec<Vec<u8>>, Vec<u8>) {
    let header = bytes[..6].to_vec();
    let trailer = bytes[bytes.len() - 12..].to_vec();
    let mut chunks = Vec::new();
    let mut pos = 6;
    while pos < bytes.len() - 12 {
        let len = u32::from_le_bytes(bytes[pos + 2..pos + 6].try_into().unwrap()) as usize;
        chunks.push(bytes[pos..pos + 10 + len].to_vec());
        pos += 10 + len;
    }
    (header, chunks, trailer)
}

#[test]
fn stored_after_execs_is_rejected_even_with_valid_crcs() {
    let app = build_trace(&[vec![(0, 0, 10), (0, 0, 11), (1, 1, 900)]]);
    let reduced =
        Reducer::new(MethodConfig::with_default_threshold(Method::RelDiff)).reduce_app(&app);
    let bytes = encode_reduced_container(&reduced, ChunkSpec::with_segments(1));
    assert_eq!(read_reduced_container(&bytes[..]).unwrap(), reduced);

    // Swap the last STORED chunk with the first EXECS chunk: every CRC
    // stays valid, only the order violates the format.
    let (header, mut chunks, trailer) = split_chunks(&bytes);
    let stored_pos = chunks
        .iter()
        .rposition(|c| c[0] == 4)
        .expect("a STORED chunk");
    let execs_pos = chunks
        .iter()
        .position(|c| c[0] == 5)
        .expect("an EXECS chunk");
    assert!(stored_pos < execs_pos);
    chunks.swap(stored_pos, execs_pos);
    let mut swapped = header;
    for chunk in &chunks {
        swapped.extend_from_slice(chunk);
    }
    // The total byte count ahead of the INDEX chunk is unchanged, so the
    // trailer still points at the index; only the chunk order is illegal.
    swapped.extend_from_slice(&trailer);
    let err = read_reduced_container(&swapped[..]).expect_err("out-of-order chunks");
    assert!(
        matches!(err, ContainerError::UnexpectedChunk { .. }),
        "{err:?}"
    );
}
