//! Error type for the compression subsystem.

use std::fmt;

use trace_model::codec::CodecError;

/// Errors produced while compressing or decompressing a chunk payload.
///
/// Decompression runs on untrusted bytes (a chunk payload whose CRC matched
/// but whose content may still be crafted), so every malformed input maps to
/// a typed variant here — never a panic, never an unbounded allocation.
#[derive(Debug)]
pub enum CompressError {
    /// A codec id byte names no known codec.
    UnknownCodec(u8),
    /// A field inside a columnar stream failed to decode with the record
    /// codec (bad varint, bad tag, negative time, …).
    Codec(CodecError),
    /// The compressed input ended before a complete value could be read.
    Truncated {
        /// What was being read when the input ended.
        what: &'static str,
    },
    /// Bytes were left over after the declared content of a stream.
    TrailingBytes {
        /// Which stream carried the extra bytes.
        what: &'static str,
        /// How many undeclared bytes were found.
        bytes: usize,
    },
    /// A declared length exceeds what the input (or a hard cap) allows.
    LengthOverflow {
        /// What was being sized.
        what: &'static str,
        /// The length declared in the input.
        declared: u64,
        /// The largest length acceptable at that point.
        limit: u64,
    },
    /// An LZ match referenced bytes before the start of the output.
    BadMatch {
        /// Output length when the match was decoded.
        position: usize,
        /// The declared backwards distance.
        distance: u64,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::UnknownCodec(id) => write!(f, "unknown chunk codec id {id}"),
            CompressError::Codec(e) => write!(f, "columnar payload error: {e}"),
            CompressError::Truncated { what } => {
                write!(f, "compressed payload truncated while reading {what}")
            }
            CompressError::TrailingBytes { what, bytes } => {
                write!(f, "{bytes} trailing bytes after {what}")
            }
            CompressError::LengthOverflow {
                what,
                declared,
                limit,
            } => write!(f, "{what} declares length {declared}, limit is {limit}"),
            CompressError::BadMatch { position, distance } => write!(
                f,
                "lz match at output byte {position} reaches back {distance} bytes, before the start"
            ),
        }
    }
}

impl std::error::Error for CompressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompressError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for CompressError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::UnexpectedEof => CompressError::Truncated {
                what: "a columnar stream value",
            },
            other => CompressError::Codec(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CompressError::UnknownCodec(9).to_string().contains('9'));
        let e = CompressError::from(CodecError::UnexpectedEof);
        assert!(matches!(e, CompressError::Truncated { .. }), "{e}");
        let e = CompressError::from(CodecError::VarintOverflow);
        assert!(e.to_string().contains("columnar"), "{e}");
        let e = CompressError::BadMatch {
            position: 3,
            distance: 7,
        };
        assert!(e.to_string().contains("reaches back 7"), "{e}");
        let e = CompressError::LengthOverflow {
            what: "lz output",
            declared: 10,
            limit: 5,
        };
        assert!(e.to_string().contains("limit is 5"), "{e}");
    }
}
