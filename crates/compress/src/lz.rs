//! Self-contained LZ byte compressor (greedy hash-chain match finder).
//!
//! The token stream is LZ4-shaped but registry-free and varint-based:
//!
//! ```text
//! block    := raw_len varint | sequence*
//! sequence := ctrl u8 (lit_len:4 | match_len:4)
//!           | lit_ext varint        (only if lit_len nibble == 15)
//!           | literal bytes         (lit_len of them)
//!           | distance varint       (absent when the literals complete the block)
//!           | match_ext varint      (only if match_len nibble == 15)
//! ```
//!
//! A sequence's literal length is the nibble, plus the extension varint when
//! the nibble saturates at 15.  The match length is the nibble plus
//! [`MIN_MATCH`] (matches shorter than that are never emitted), again with a
//! varint extension at 15.  `distance` counts back from the current output
//! position and may reach anywhere into the already-produced output — the
//! window is the whole block, which is fine because blocks are container
//! chunks, not gigabyte files.  Overlapping matches (distance < length) are
//! legal and decode byte by byte, which is how runs compress.
//!
//! The match finder is a classic greedy hash chain: 4-byte hashes index the
//! most recent occurrence, a `prev` chain links earlier ones, and the search
//! walks at most `MAX_CHAIN` candidates.  Compression is deterministic.

use trace_model::codec::varint::write_u64;
use trace_model::codec::Reader;

use crate::error::CompressError;

/// Shortest match worth encoding (a sequence costs about 3 bytes).
pub const MIN_MATCH: usize = 4;
/// Longest hash-chain walk per position; bounds worst-case encode time.
const MAX_CHAIN: usize = 128;
/// Hash table size (log2).
const HASH_BITS: u32 = 15;
/// Hard cap on a block's decompressed size.  Chunk payloads are cut far
/// smaller by the container writer; anything past this in a crafted file is
/// rejected before allocation.
pub const MAX_RAW_LEN: u64 = 1 << 30;

#[inline]
fn hash4(window: &[u8]) -> usize {
    // Callers pass windows of at least MIN_MATCH bytes; a shorter window
    // hashes to a fixed bucket instead of panicking.
    let v = match window.first_chunk::<4>() {
        Some(&bytes) => u32::from_le_bytes(bytes),
        None => 0,
    };
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Length of the common prefix of `input[a..]` and `input[b..]` (`a < b`).
#[inline]
fn match_length(input: &[u8], a: usize, b: usize) -> usize {
    let tail_a = input.get(a..).unwrap_or(&[]);
    let tail_b = input.get(b..).unwrap_or(&[]);
    tail_a
        .iter()
        .zip(tail_b)
        .take_while(|(x, y)| x == y)
        .count()
}

fn write_sequence(out: &mut Vec<u8>, literals: &[u8], matched: Option<(usize, usize)>) {
    let lit_nibble = literals.len().min(15) as u8;
    let match_nibble = matched
        .map(|(_, len)| (len - MIN_MATCH).min(15) as u8)
        .unwrap_or(0);
    out.push((lit_nibble << 4) | match_nibble);
    if lit_nibble == 15 {
        write_u64(out, (literals.len() - 15) as u64);
    }
    out.extend_from_slice(literals);
    if let Some((distance, len)) = matched {
        write_u64(out, distance as u64);
        if match_nibble == 15 {
            write_u64(out, (len - MIN_MATCH - 15) as u64);
        }
    }
}

/// Compresses `input` into a self-contained LZ block.
///
/// The output is never larger than `input.len() + varint(len) + a few
/// bytes` of sequence overhead; callers that care (the container writer)
/// compare lengths and keep the raw payload when compression does not pay.
pub fn lz_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    write_u64(&mut out, input.len() as u64);
    if input.is_empty() {
        return out;
    }

    // The hash-chain internals index with loop invariants (hash4 yields
    // values below the table size by construction, positions stay below
    // input.len()); this is the trusted in-process encoder hot loop, not
    // untrusted input, so the invariants are allowed rather than re-checked
    // per byte.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; input.len()];
    let insert = |head: &mut Vec<usize>, prev: &mut Vec<usize>, pos: usize| {
        let h = hash4(input.get(pos..).unwrap_or(&[]));
        // lint:allow(indexing) -- pos < input.len() == prev.len(); h < head.len() by the hash shift
        prev[pos] = head[h];
        // lint:allow(indexing) -- h < head.len() by the hash shift
        head[h] = pos;
    };
    let find = |head: &Vec<usize>, prev: &Vec<usize>, pos: usize| -> (usize, usize) {
        let mut best_len = 0usize;
        let mut best_pos = 0usize;
        // lint:allow(indexing) -- h < head.len() by the hash shift
        let mut candidate = head[hash4(input.get(pos..).unwrap_or(&[]))];
        let mut depth = 0usize;
        while candidate != usize::MAX && depth < MAX_CHAIN {
            let len = match_length(input, candidate, pos);
            if len > best_len {
                best_len = len;
                best_pos = candidate;
                if pos + len == input.len() {
                    break; // cannot do better than reaching the end
                }
            }
            // lint:allow(indexing) -- chain entries are positions already inserted, all < prev.len()
            candidate = prev[candidate];
            depth += 1;
        }
        (best_len, best_pos)
    };

    let mut lit_start = 0usize;
    let mut pos = 0usize;
    while pos + MIN_MATCH <= input.len() {
        let (best_len, best_pos) = find(&head, &prev, pos);
        if best_len < MIN_MATCH {
            insert(&mut head, &mut prev, pos);
            pos += 1;
            continue;
        }
        // Lazy matching: if starting one byte later yields a strictly
        // longer match, emit this byte as a literal and take the later
        // match instead (the classic gzip deferral, one step deep).
        if pos + 1 + MIN_MATCH <= input.len() {
            let (next_len, _) = find(&head, &prev, pos + 1);
            if next_len > best_len + 1 {
                insert(&mut head, &mut prev, pos);
                pos += 1;
                continue;
            }
        }
        write_sequence(
            &mut out,
            // lint:allow(indexing) -- lit_start <= pos <= input.len() by the scan loop
            &input[lit_start..pos],
            Some((pos - best_pos, best_len)),
        );
        let insert_end = (pos + best_len).min(input.len() - MIN_MATCH + 1);
        for p in pos..insert_end {
            insert(&mut head, &mut prev, p);
        }
        pos += best_len;
        lit_start = pos;
    }
    if lit_start < input.len() {
        // lint:allow(indexing) -- guarded by the bounds check on the previous line
        write_sequence(&mut out, &input[lit_start..], None);
    }
    out
}

/// Decompresses a block produced by [`lz_compress`].
///
/// Every way the input can be malformed — truncation, a distance reaching
/// before the output start, lengths disagreeing with the declared raw
/// length, trailing bytes — is a typed [`CompressError`]; the output buffer
/// grows only as bytes are actually produced.
pub fn lz_decompress(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut reader = Reader::new(input);
    let raw_len = trace_model::codec::varint::read_u64(&mut reader)?;
    if raw_len > MAX_RAW_LEN {
        return Err(CompressError::LengthOverflow {
            what: "lz block raw length",
            declared: raw_len,
            limit: MAX_RAW_LEN,
        });
    }
    let raw_len = raw_len as usize;
    let mut out: Vec<u8> = Vec::with_capacity(raw_len.min(1 << 20));
    while out.len() < raw_len {
        let ctrl = reader.read_byte().map_err(|_| CompressError::Truncated {
            what: "lz sequence control byte",
        })?;
        let mut lit_len = u64::from(ctrl >> 4);
        if lit_len == 15 {
            lit_len = lit_len
                .checked_add(trace_model::codec::varint::read_u64(&mut reader)?)
                .ok_or(CompressError::LengthOverflow {
                    what: "lz literal run",
                    declared: u64::MAX,
                    limit: raw_len as u64,
                })?;
        }
        if lit_len > (raw_len - out.len()) as u64 {
            return Err(CompressError::LengthOverflow {
                what: "lz literal run",
                declared: lit_len,
                limit: (raw_len - out.len()) as u64,
            });
        }
        let literals =
            reader
                .read_bytes(lit_len as usize)
                .map_err(|_| CompressError::Truncated {
                    what: "lz literal bytes",
                })?;
        out.extend_from_slice(literals);
        if out.len() == raw_len {
            break;
        }
        let distance = trace_model::codec::varint::read_u64(&mut reader)?;
        if distance == 0 || distance > out.len() as u64 {
            return Err(CompressError::BadMatch {
                position: out.len(),
                distance,
            });
        }
        let mut match_len = u64::from(ctrl & 0x0f) + MIN_MATCH as u64;
        if ctrl & 0x0f == 15 {
            match_len = match_len
                .checked_add(trace_model::codec::varint::read_u64(&mut reader)?)
                .ok_or(CompressError::LengthOverflow {
                    what: "lz match run",
                    declared: u64::MAX,
                    limit: raw_len as u64,
                })?;
        }
        if match_len > (raw_len - out.len()) as u64 {
            return Err(CompressError::LengthOverflow {
                what: "lz match run",
                declared: match_len,
                limit: (raw_len - out.len()) as u64,
            });
        }
        let start = out.len() - distance as usize;
        // Overlapping matches are legal (distance < length): copy byte by
        // byte so the just-written bytes feed the rest of the match.
        for i in 0..match_len as usize {
            // lint:allow(indexing) -- distance <= out.len() is checked above and each iteration pushes one byte, so start + i < out.len()
            let byte = out[start + i];
            out.push(byte);
        }
    }
    if !reader.is_at_end() {
        return Err(CompressError::TrailingBytes {
            what: "the declared lz block",
            bytes: reader.remaining(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let compressed = lz_compress(input);
        let decoded = lz_decompress(&compressed).expect("decompress");
        assert_eq!(decoded, input);
        compressed
    }

    #[test]
    fn empty_and_tiny_inputs_round_trip() {
        assert_eq!(round_trip(b""), vec![0]);
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn repetitive_input_compresses_well() {
        let input: Vec<u8> = b"late_sender late_sender late_sender "
            .iter()
            .cycle()
            .take(4096)
            .copied()
            .collect();
        let compressed = round_trip(&input);
        assert!(
            compressed.len() * 10 < input.len(),
            "{} vs {}",
            compressed.len(),
            input.len()
        );
    }

    #[test]
    fn runs_use_overlapping_matches() {
        let input = vec![7u8; 100_000];
        let compressed = round_trip(&input);
        assert!(compressed.len() < 64, "{}", compressed.len());
    }

    #[test]
    fn incompressible_input_round_trips_with_bounded_expansion() {
        // A xorshift byte stream: no 4-byte match survives, so everything
        // is literals.
        let mut state = 0x9e3779b97f4a7c15u64;
        let input: Vec<u8> = (0..10_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect();
        let compressed = round_trip(&input);
        assert!(compressed.len() <= input.len() + input.len() / 100 + 16);
    }

    #[test]
    fn long_literal_and_match_extensions_round_trip() {
        // > 15 literals followed by a > 15+MIN_MATCH match of them.
        let mut input: Vec<u8> = (0u8..=99).collect();
        input.extend(0u8..=99);
        round_trip(&input);
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let input: Vec<u8> = b"abcdabcdabcdabcd-tail".to_vec();
        let compressed = lz_compress(&input);
        for cut in 0..compressed.len() {
            let err = lz_decompress(&compressed[..cut]).expect_err("truncated");
            assert!(
                matches!(
                    err,
                    CompressError::Truncated { .. }
                        | CompressError::LengthOverflow { .. }
                        | CompressError::BadMatch { .. }
                        | CompressError::TrailingBytes { .. }
                        | CompressError::Codec(_)
                ),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_distance_and_oversized_lengths_are_typed_errors() {
        // raw_len 8, one literal, then a match reaching back 5 bytes.
        let block = [8u8, 0x11, b'x', 5u8];
        assert!(matches!(
            lz_decompress(&block),
            Err(CompressError::BadMatch { distance: 5, .. })
        ));
        // Declared raw length above the cap is rejected before allocating.
        let mut huge = Vec::new();
        write_u64(&mut huge, MAX_RAW_LEN + 1);
        assert!(matches!(
            lz_decompress(&huge),
            Err(CompressError::LengthOverflow { .. })
        ));
        // A match that would overrun the declared raw length.
        let overrun = [6u8, 0x4f, b'a', b'b', b'c', b'd', 2u8, 100u8];
        assert!(matches!(
            lz_decompress(&overrun),
            Err(CompressError::LengthOverflow { .. })
        ));
        // Trailing bytes after the block completes.
        let mut trailing = lz_compress(b"abcdefgh");
        trailing.push(0);
        assert!(matches!(
            lz_decompress(&trailing),
            Err(CompressError::TrailingBytes { .. })
        ));
    }
}
