//! Trace-aware columnar transform for chunk payloads.
//!
//! A container chunk payload is row-oriented: records (or stored segments,
//! or executions) one after another, each interleaving a tag byte, ids,
//! time stamps and communication parameters.  That interleaving is what
//! keeps a generic byte compressor from seeing the structure — consecutive
//! *records* are near-identical in iterative traces, but consecutive
//! *bytes* are not.
//!
//! The transform splits the payload into per-field streams and delta-codes
//! the ones that are monotone or slowly varying (time stamps, region and
//! context ids, segment ids, message sizes), zig-zag + varint encoded so
//! small deltas stay at one byte:
//!
//! ```text
//! columnar := item_count varint | stream*          (fixed set per payload class)
//! stream   := byte_len varint | bytes
//! ```
//!
//! Columns alone are roughly size-neutral (a transposition plus per-stream
//! headers; repetitive fields collapse to runs of one-byte zero deltas,
//! noisy ones — durations and waits — are deliberately left as raw
//! varints).  Their value is what the LZ backend sees afterwards: in
//! `delta-lz`, the homogeneous streams turn repeating trace structure into
//! byte runs the match finder can fold away, measurably beating LZ over
//! raw rows (EXPERIMENTS.md Table 5).  The inverse transform reconstructs
//! the row payload byte-for-byte: the row codec's varints are canonical,
//! so decode → re-encode is the identity on every payload the container
//! writer produces.
//!
//! Numeric streams use *wrapping* deltas (`value - last` in two's
//! complement), which is bijective on `u64` and therefore total: no input
//! value can overflow the transform.  Time streams reuse the row codec's
//! exact svarint delta rule (including the per-chunk and per-segment clock
//! restarts) so the reconstructed deltas match the originals bit for bit.

use trace_model::codec::varint::{read_i64, read_u64, write_i64, write_u64};
use trace_model::codec::{
    read_exec, read_record, read_stored_segment, write_exec, write_record, write_stored_segment,
    CodecError, Reader,
};
use trace_model::{
    CollectiveOp, CommInfo, ContextId, Event, Rank, RegionId, Segment, SegmentExec, StoredSegment,
    Time, TraceRecord,
};

use crate::error::CompressError;

/// Which column schema a chunk payload uses.
///
/// The class follows the chunk kind: `RECORDS` chunks hold trace records,
/// `STORED` chunks hold representative segments, `EXECS` chunks hold
/// segment executions.  Control chunks (preamble, section markers, index)
/// are [`PayloadClass::Opaque`]: the columnar transform passes them through
/// unchanged (the LZ backend still applies to them when asked).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadClass {
    /// Raw trace records (app containers).
    Records,
    /// Stored representative segments (reduced containers).
    Stored,
    /// Segment executions (reduced containers).
    Execs,
    /// No trace structure; the columnar transform is the identity.
    Opaque,
}

/// Column tag bytes.  These are internal to the columnar format (the row
/// codec's tags are reconstructed by re-encoding, not copied), though they
/// use the same values as the row codec for easy cross-reading of dumps.
mod tag {
    pub const SEGMENT_BEGIN: u8 = 0;
    pub const SEGMENT_END: u8 = 1;
    pub const EVENT: u8 = 2;

    pub const COMM_COMPUTE: u8 = 0;
    pub const COMM_SEND: u8 = 1;
    pub const COMM_RECV: u8 = 2;
    pub const COMM_SENDRECV: u8 = 3;
    pub const COMM_COLLECTIVE: u8 = 4;
}

fn collective_op_tag(op: CollectiveOp) -> u8 {
    // Exhaustive match instead of a position() lookup so adding a variant is
    // a compile error here rather than a panic path.
    match op {
        CollectiveOp::Barrier => 0,
        CollectiveOp::Bcast => 1,
        CollectiveOp::Scatter => 2,
        CollectiveOp::Gather => 3,
        CollectiveOp::Reduce => 4,
        CollectiveOp::Allgather => 5,
        CollectiveOp::Allreduce => 6,
        CollectiveOp::Alltoall => 7,
    }
}

fn collective_op_from_tag(byte: u8) -> Result<CollectiveOp, CompressError> {
    CollectiveOp::ALL
        .get(byte as usize)
        .copied()
        .ok_or(CompressError::Codec(CodecError::BadTag {
            what: "columnar collective op",
            tag: byte,
        }))
}

/// Write half of a wrapping-delta + zig-zag varint stream.
#[derive(Default)]
struct DeltaWriter {
    buf: Vec<u8>,
    last: u64,
}

impl DeltaWriter {
    fn push(&mut self, value: u64) {
        write_i64(&mut self.buf, value.wrapping_sub(self.last) as i64);
        self.last = value;
    }
}

/// Read half of a wrapping-delta stream.
struct DeltaReader<'a> {
    reader: Reader<'a>,
    last: u64,
}

impl<'a> DeltaReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        DeltaReader {
            reader: Reader::new(bytes),
            last: 0,
        }
    }

    fn next(&mut self) -> Result<u64, CompressError> {
        let delta = read_i64(&mut self.reader)?;
        self.last = self.last.wrapping_add(delta as u64);
        Ok(self.last)
    }
}

/// Write half of a time stream: the row codec's exact svarint delta rule.
/// (A second-order difference was tried here and measured *worse*: the
/// workloads' inter-record gaps carry simulated timing noise, and
/// differencing noise doubles its variance instead of cancelling it.)
#[derive(Default)]
struct TimeWriter {
    buf: Vec<u8>,
    prev: Time,
}

impl TimeWriter {
    fn push(&mut self, time: Time) {
        write_i64(
            &mut self.buf,
            time.as_nanos() as i64 - self.prev.as_nanos() as i64,
        );
        self.prev = time;
    }

    /// Restarts the delta clock (the events of a stored segment restart it
    /// per segment, exactly as in the row codec).
    fn restart(&mut self) {
        self.prev = Time::ZERO;
    }
}

/// Read half of a time stream, with the row codec's negative-time check.
struct TimeReader<'a> {
    reader: Reader<'a>,
    prev: Time,
}

impl<'a> TimeReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        TimeReader {
            reader: Reader::new(bytes),
            prev: Time::ZERO,
        }
    }

    fn next(&mut self) -> Result<Time, CompressError> {
        let delta = read_i64(&mut self.reader)?;
        // checked_add, not +: a crafted stream can pair deltas that
        // overflow i64, and totality on untrusted input is part of this
        // crate's contract (debug builds would otherwise panic).
        let nanos = (self.prev.as_nanos() as i64).checked_add(delta);
        match nanos {
            Some(nanos) if nanos >= 0 => {
                self.prev = Time::from_nanos(nanos as u64);
                Ok(self.prev)
            }
            _ => Err(CompressError::Codec(CodecError::NegativeTime)),
        }
    }

    fn restart(&mut self) {
        self.prev = Time::ZERO;
    }
}

/// Reads one byte off a raw byte stream (a tags column).
fn next_tag(reader: &mut Reader<'_>, what: &'static str) -> Result<u8, CompressError> {
    reader
        .read_byte()
        .map_err(|_| CompressError::Truncated { what })
}

/// Serializes `count` plus the given streams in order.
fn write_streams(count: u64, streams: &[&[u8]]) -> Vec<u8> {
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total + streams.len() * 3 + 4);
    write_u64(&mut out, count);
    for stream in streams {
        write_u64(&mut out, stream.len() as u64);
        out.extend_from_slice(stream);
    }
    out
}

/// Reads `N` length-prefixed streams, requiring them to exhaust the input.
fn read_streams<const N: usize>(payload: &[u8]) -> Result<(u64, [&[u8]; N]), CompressError> {
    let mut reader = Reader::new(payload);
    let count = read_u64(&mut reader)?;
    let mut streams: [&[u8]; N] = [&[]; N];
    for stream in streams.iter_mut() {
        let len = read_u64(&mut reader)?;
        if len > reader.remaining() as u64 {
            return Err(CompressError::LengthOverflow {
                what: "columnar stream",
                declared: len,
                limit: reader.remaining() as u64,
            });
        }
        *stream = reader
            .read_bytes(len as usize)
            .map_err(|_| CompressError::Truncated {
                what: "columnar stream",
            })?;
    }
    if !reader.is_at_end() {
        return Err(CompressError::TrailingBytes {
            what: "the declared columnar streams",
            bytes: reader.remaining(),
        });
    }
    Ok((count, streams))
}

/// Requires a stream reader to be fully consumed once all items are read.
fn require_at_end(reader: &Reader<'_>, what: &'static str) -> Result<(), CompressError> {
    if !reader.is_at_end() {
        return Err(CompressError::TrailingBytes {
            what,
            bytes: reader.remaining(),
        });
    }
    Ok(())
}

/// The event-field columns shared by the `Records` and `Stored` schemas.
///
/// Durations and waits are stored as raw varints, not deltas: they carry
/// the workloads' timing noise, and delta+zigzag on noise doubles its
/// magnitude (measured: it *expanded* those streams).  Grouping them into
/// their own streams is what helps — identical events produce identical
/// varints back to back, which the LZ layer folds into matches.
#[derive(Default)]
struct EventColumnsW {
    tags: Vec<u8>,
    regions: DeltaWriter,
    durations: Vec<u8>,
    waits: Vec<u8>,
    peers: DeltaWriter,
    meta: DeltaWriter,
    sizes: DeltaWriter,
}

impl EventColumnsW {
    /// Pushes every field of `event` except its start time (the time stream
    /// is owned by the caller, whose delta clock also covers non-event
    /// records).
    fn push(&mut self, event: &Event) {
        self.regions.push(u64::from(event.region.as_u32()));
        write_u64(&mut self.durations, event.duration().as_nanos());
        write_u64(&mut self.waits, event.wait.as_nanos());
        match event.comm {
            CommInfo::Compute => self.tags.push(tag::COMM_COMPUTE),
            CommInfo::Send {
                peer,
                tag: t,
                bytes,
            } => {
                self.tags.push(tag::COMM_SEND);
                self.peers.push(u64::from(peer.as_u32()));
                self.meta.push(u64::from(t));
                self.sizes.push(bytes);
            }
            CommInfo::Recv {
                peer,
                tag: t,
                bytes,
            } => {
                self.tags.push(tag::COMM_RECV);
                self.peers.push(u64::from(peer.as_u32()));
                self.meta.push(u64::from(t));
                self.sizes.push(bytes);
            }
            CommInfo::SendRecv {
                to,
                from,
                tag: t,
                bytes,
            } => {
                self.tags.push(tag::COMM_SENDRECV);
                self.peers.push(u64::from(to.as_u32()));
                self.peers.push(u64::from(from.as_u32()));
                self.meta.push(u64::from(t));
                self.sizes.push(bytes);
            }
            CommInfo::Collective {
                op,
                root,
                comm_size,
                bytes,
            } => {
                self.tags.push(tag::COMM_COLLECTIVE);
                self.tags.push(collective_op_tag(op));
                self.peers.push(u64::from(root.as_u32()));
                self.meta.push(u64::from(comm_size));
                self.sizes.push(bytes);
            }
        }
    }

    fn streams(&self) -> [&[u8]; 7] {
        [
            &self.tags,
            &self.regions.buf,
            &self.durations,
            &self.waits,
            &self.peers.buf,
            &self.meta.buf,
            &self.sizes.buf,
        ]
    }
}

struct EventColumnsR<'a> {
    tags: Reader<'a>,
    regions: DeltaReader<'a>,
    durations: Reader<'a>,
    waits: Reader<'a>,
    peers: DeltaReader<'a>,
    meta: DeltaReader<'a>,
    sizes: DeltaReader<'a>,
}

impl<'a> EventColumnsR<'a> {
    fn new(streams: [&'a [u8]; 7]) -> Self {
        let [tags, regions, durations, waits, peers, meta, sizes] = streams;
        EventColumnsR {
            tags: Reader::new(tags),
            regions: DeltaReader::new(regions),
            durations: Reader::new(durations),
            waits: Reader::new(waits),
            peers: DeltaReader::new(peers),
            meta: DeltaReader::new(meta),
            sizes: DeltaReader::new(sizes),
        }
    }

    /// Reads back every field [`EventColumnsW::push`] wrote; `start` comes
    /// from the caller's time stream.
    fn next(&mut self, start: Time) -> Result<Event, CompressError> {
        let region = RegionId(self.regions.next()? as u32);
        let duration = Time::from_nanos(read_u64(&mut self.durations)?);
        let wait = Time::from_nanos(read_u64(&mut self.waits)?);
        let comm = match next_tag(&mut self.tags, "a columnar comm-tags stream")? {
            tag::COMM_COMPUTE => CommInfo::Compute,
            tag::COMM_SEND => CommInfo::Send {
                peer: Rank(self.peers.next()? as u32),
                tag: self.meta.next()? as u32,
                bytes: self.sizes.next()?,
            },
            tag::COMM_RECV => CommInfo::Recv {
                peer: Rank(self.peers.next()? as u32),
                tag: self.meta.next()? as u32,
                bytes: self.sizes.next()?,
            },
            tag::COMM_SENDRECV => CommInfo::SendRecv {
                to: Rank(self.peers.next()? as u32),
                from: Rank(self.peers.next()? as u32),
                tag: self.meta.next()? as u32,
                bytes: self.sizes.next()?,
            },
            tag::COMM_COLLECTIVE => {
                let op = collective_op_from_tag(next_tag(
                    &mut self.tags,
                    "a columnar comm-tags stream",
                )?)?;
                CommInfo::Collective {
                    op,
                    root: Rank(self.peers.next()? as u32),
                    comm_size: self.meta.next()? as u32,
                    bytes: self.sizes.next()?,
                }
            }
            other => {
                return Err(CompressError::Codec(CodecError::BadTag {
                    what: "columnar comm info",
                    tag: other,
                }))
            }
        };
        Ok(Event {
            region,
            start,
            end: start + duration,
            comm,
            wait,
        })
    }

    /// Requires every event stream to be fully consumed.
    fn finish(&self) -> Result<(), CompressError> {
        require_at_end(&self.tags, "the items of a comm-tags column")?;
        require_at_end(&self.regions.reader, "the items of a regions column")?;
        require_at_end(&self.durations, "the items of a durations column")?;
        require_at_end(&self.waits, "the items of a waits column")?;
        require_at_end(&self.peers.reader, "the items of a peers column")?;
        require_at_end(&self.meta.reader, "the items of a meta column")?;
        require_at_end(&self.sizes.reader, "the items of a sizes column")
    }
}

// ---------------------------------------------------------------------------
// RECORDS chunks
// ---------------------------------------------------------------------------

fn encode_records(payload: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut reader = Reader::new(payload);
    let count = read_u64(&mut reader)?;
    let mut tags = Vec::new();
    let mut contexts = DeltaWriter::default();
    let mut times = TimeWriter::default();
    let mut events = EventColumnsW::default();
    let mut prev_time = Time::ZERO;
    for _ in 0..count {
        let (record, new_prev) = read_record(&mut reader, prev_time)?;
        prev_time = new_prev;
        match record {
            TraceRecord::SegmentBegin { context, time } => {
                tags.push(tag::SEGMENT_BEGIN);
                contexts.push(u64::from(context.as_u32()));
                times.push(time);
            }
            TraceRecord::SegmentEnd { context, time } => {
                tags.push(tag::SEGMENT_END);
                contexts.push(u64::from(context.as_u32()));
                times.push(time);
            }
            TraceRecord::Event(event) => {
                tags.push(tag::EVENT);
                times.push(event.start);
                events.push(&event);
            }
        }
    }
    require_at_end(&reader, "the declared records of a RECORDS payload")?;
    let event_streams = events.streams();
    let mut streams: Vec<&[u8]> = vec![&tags, &contexts.buf, &times.buf];
    streams.extend_from_slice(&event_streams);
    Ok(write_streams(count, &streams))
}

fn decode_records(payload: &[u8]) -> Result<Vec<u8>, CompressError> {
    let (count, streams) = read_streams::<10>(payload)?;
    let [tags, contexts, times, ev_tags, regions, durations, waits, peers, meta, sizes] = streams;
    let mut tags = Reader::new(tags);
    let mut contexts = DeltaReader::new(contexts);
    let mut times = TimeReader::new(times);
    let mut events = EventColumnsR::new([ev_tags, regions, durations, waits, peers, meta, sizes]);

    let mut out = Vec::with_capacity(payload.len() + payload.len() / 2 + 8);
    write_u64(&mut out, count);
    let mut prev_time = Time::ZERO;
    for _ in 0..count {
        let record = match next_tag(&mut tags, "a columnar record-tags stream")? {
            tag::SEGMENT_BEGIN => TraceRecord::SegmentBegin {
                context: ContextId(contexts.next()? as u32),
                time: times.next()?,
            },
            tag::SEGMENT_END => TraceRecord::SegmentEnd {
                context: ContextId(contexts.next()? as u32),
                time: times.next()?,
            },
            tag::EVENT => {
                let start = times.next()?;
                TraceRecord::Event(events.next(start)?)
            }
            other => {
                return Err(CompressError::Codec(CodecError::BadTag {
                    what: "columnar trace record",
                    tag: other,
                }))
            }
        };
        prev_time = write_record(&mut out, &record, prev_time);
    }
    require_at_end(&tags, "the items of a record-tags column")?;
    require_at_end(&contexts.reader, "the items of a contexts column")?;
    require_at_end(&times.reader, "the items of a times column")?;
    events.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// STORED chunks
// ---------------------------------------------------------------------------

fn encode_stored(payload: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut reader = Reader::new(payload);
    let count = read_u64(&mut reader)?;
    let mut seg_ids = DeltaWriter::default();
    let mut reps = DeltaWriter::default();
    let mut contexts = DeltaWriter::default();
    let mut starts = DeltaWriter::default();
    let mut ends = DeltaWriter::default();
    let mut counts = DeltaWriter::default();
    let mut times = TimeWriter::default();
    let mut events = EventColumnsW::default();
    for _ in 0..count {
        let stored = read_stored_segment(&mut reader)?;
        seg_ids.push(u64::from(stored.id));
        reps.push(u64::from(stored.represented));
        contexts.push(u64::from(stored.segment.context.as_u32()));
        starts.push(stored.segment.start.as_nanos());
        ends.push(stored.segment.end.as_nanos());
        counts.push(stored.segment.events.len() as u64);
        times.restart();
        for event in &stored.segment.events {
            times.push(event.start);
            events.push(event);
        }
    }
    require_at_end(&reader, "the declared segments of a STORED payload")?;
    let event_streams = events.streams();
    let mut streams: Vec<&[u8]> = vec![
        &seg_ids.buf,
        &reps.buf,
        &contexts.buf,
        &starts.buf,
        &ends.buf,
        &counts.buf,
        &times.buf,
    ];
    streams.extend_from_slice(&event_streams);
    Ok(write_streams(count, &streams))
}

fn decode_stored(payload: &[u8]) -> Result<Vec<u8>, CompressError> {
    let (count, streams) = read_streams::<14>(payload)?;
    let [seg_ids, reps, contexts, starts, ends, counts, times, ev_tags, regions, durations, waits, peers, meta, sizes] =
        streams;
    let mut seg_ids = DeltaReader::new(seg_ids);
    let mut reps = DeltaReader::new(reps);
    let mut contexts = DeltaReader::new(contexts);
    let mut starts = DeltaReader::new(starts);
    let mut ends = DeltaReader::new(ends);
    let mut counts = DeltaReader::new(counts);
    let mut times = TimeReader::new(times);
    let mut events = EventColumnsR::new([ev_tags, regions, durations, waits, peers, meta, sizes]);

    let mut out = Vec::with_capacity(payload.len() + payload.len() / 2 + 8);
    write_u64(&mut out, count);
    for _ in 0..count {
        let id = seg_ids.next()? as u32;
        let represented = reps.next()? as u32;
        let context = ContextId(contexts.next()? as u32);
        let start = Time::from_nanos(starts.next()?);
        let end = Time::from_nanos(ends.next()?);
        let event_count = counts.next()?;
        times.restart();
        let mut segment_events = Vec::new();
        for _ in 0..event_count {
            let event_start = times.next()?;
            segment_events.push(events.next(event_start)?);
        }
        write_stored_segment(
            &mut out,
            &StoredSegment {
                id,
                represented,
                segment: Segment {
                    context,
                    start,
                    end,
                    events: segment_events,
                },
            },
        );
    }
    require_at_end(&seg_ids.reader, "the items of a segment-ids column")?;
    require_at_end(&reps.reader, "the items of a represented column")?;
    require_at_end(&contexts.reader, "the items of a contexts column")?;
    require_at_end(&starts.reader, "the items of a starts column")?;
    require_at_end(&ends.reader, "the items of an ends column")?;
    require_at_end(&counts.reader, "the items of a counts column")?;
    require_at_end(&times.reader, "the items of a times column")?;
    events.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// EXECS chunks
// ---------------------------------------------------------------------------

fn encode_execs(payload: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut reader = Reader::new(payload);
    let count = read_u64(&mut reader)?;
    let mut seg_ids = DeltaWriter::default();
    let mut times = TimeWriter::default();
    let mut prev = Time::ZERO;
    for _ in 0..count {
        let (exec, new_prev) = read_exec(&mut reader, prev)?;
        prev = new_prev;
        seg_ids.push(u64::from(exec.segment));
        times.push(exec.start);
    }
    require_at_end(&reader, "the declared executions of an EXECS payload")?;
    Ok(write_streams(count, &[&seg_ids.buf, &times.buf]))
}

fn decode_execs(payload: &[u8]) -> Result<Vec<u8>, CompressError> {
    let (count, streams) = read_streams::<2>(payload)?;
    let [seg_ids, times] = streams;
    let mut seg_ids = DeltaReader::new(seg_ids);
    let mut times = TimeReader::new(times);

    let mut out = Vec::with_capacity(payload.len() + payload.len() / 2 + 8);
    write_u64(&mut out, count);
    let mut prev = Time::ZERO;
    for _ in 0..count {
        let exec = SegmentExec {
            segment: seg_ids.next()? as u32,
            start: times.next()?,
        };
        prev = write_exec(&mut out, &exec, prev);
    }
    require_at_end(&seg_ids.reader, "the items of a segment-ids column")?;
    require_at_end(&times.reader, "the items of a times column")?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Applies the columnar transform to a row payload of the given class.
///
/// The payload must be canonical row bytes as produced by the container
/// writer (the transform parses it with the row codec); malformed input is
/// a typed error.
pub fn column_encode(class: PayloadClass, payload: &[u8]) -> Result<Vec<u8>, CompressError> {
    match class {
        PayloadClass::Records => encode_records(payload),
        PayloadClass::Stored => encode_stored(payload),
        PayloadClass::Execs => encode_execs(payload),
        PayloadClass::Opaque => Ok(payload.to_vec()),
    }
}

/// Inverts [`column_encode`], reconstructing the row payload byte-for-byte.
pub fn column_decode(class: PayloadClass, payload: &[u8]) -> Result<Vec<u8>, CompressError> {
    match class {
        PayloadClass::Records => decode_records(payload),
        PayloadClass::Stored => decode_stored(payload),
        PayloadClass::Execs => decode_execs(payload),
        PayloadClass::Opaque => Ok(payload.to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        let mut records = Vec::new();
        for i in 0..40u64 {
            let base = 1_000 * i;
            records.push(TraceRecord::SegmentBegin {
                context: ContextId(1),
                time: Time::from_nanos(base),
            });
            records.push(TraceRecord::Event(Event::compute(
                RegionId(0),
                Time::from_nanos(base + 10),
                Time::from_nanos(base + 200),
            )));
            records.push(TraceRecord::Event(
                Event::with_comm(
                    RegionId(2),
                    Time::from_nanos(base + 210),
                    Time::from_nanos(base + 400),
                    if i % 2 == 0 {
                        CommInfo::Send {
                            peer: Rank(1),
                            tag: 7,
                            bytes: 4096,
                        }
                    } else {
                        CommInfo::Collective {
                            op: CollectiveOp::Allreduce,
                            root: Rank(0),
                            comm_size: 8,
                            bytes: 256,
                        }
                    },
                )
                .with_wait(Time::from_nanos(13)),
            ));
            records.push(TraceRecord::SegmentEnd {
                context: ContextId(1),
                time: Time::from_nanos(base + 410),
            });
        }
        records
    }

    fn records_payload(records: &[TraceRecord]) -> Vec<u8> {
        let mut payload = Vec::new();
        write_u64(&mut payload, records.len() as u64);
        let mut prev = Time::ZERO;
        for record in records {
            prev = write_record(&mut payload, record, prev);
        }
        payload
    }

    #[test]
    fn records_round_trip_and_stay_near_row_size() {
        let payload = records_payload(&sample_records());
        let columnar = column_encode(PayloadClass::Records, &payload).unwrap();
        assert_eq!(
            column_decode(PayloadClass::Records, &columnar).unwrap(),
            payload
        );
        // The transform is roughly size-neutral on its own (a transposition
        // plus per-stream length headers); its value is what the LZ layer
        // can do with the homogeneous streams, asserted in lib.rs.
        assert!(
            columnar.len() <= payload.len() + 64,
            "columnar {} vs row {}",
            columnar.len(),
            payload.len()
        );
    }

    #[test]
    fn stored_and_execs_round_trip() {
        let events: Vec<Event> = (0..10)
            .map(|i| {
                Event::with_comm(
                    RegionId(i % 3),
                    Time::from_nanos(u64::from(i) * 100),
                    Time::from_nanos(u64::from(i) * 100 + 80),
                    CommInfo::SendRecv {
                        to: Rank(i),
                        from: Rank(i + 1),
                        tag: 3,
                        bytes: 512,
                    },
                )
            })
            .collect();
        let mut payload = Vec::new();
        write_u64(&mut payload, 3);
        for id in 0..3u32 {
            write_stored_segment(
                &mut payload,
                &StoredSegment {
                    id,
                    represented: 5 + id,
                    segment: Segment {
                        context: ContextId(2),
                        start: Time::ZERO,
                        end: Time::from_nanos(1_000),
                        events: events.clone(),
                    },
                },
            );
        }
        let columnar = column_encode(PayloadClass::Stored, &payload).unwrap();
        assert_eq!(
            column_decode(PayloadClass::Stored, &columnar).unwrap(),
            payload
        );

        let mut payload = Vec::new();
        write_u64(&mut payload, 64);
        let mut prev = Time::ZERO;
        for i in 0..64u64 {
            prev = write_exec(
                &mut payload,
                &SegmentExec {
                    segment: (i % 4) as u32,
                    start: Time::from_nanos(i * 777),
                },
                prev,
            );
        }
        let columnar = column_encode(PayloadClass::Execs, &payload).unwrap();
        assert_eq!(
            column_decode(PayloadClass::Execs, &columnar).unwrap(),
            payload
        );
    }

    #[test]
    fn opaque_is_the_identity() {
        let payload = b"arbitrary control bytes".to_vec();
        let encoded = column_encode(PayloadClass::Opaque, &payload).unwrap();
        assert_eq!(encoded, payload);
        assert_eq!(
            column_decode(PayloadClass::Opaque, &encoded).unwrap(),
            payload
        );
    }

    #[test]
    fn malformed_columnar_payloads_are_typed_errors() {
        // Truncation anywhere in a valid columnar payload.
        let payload = records_payload(&sample_records());
        let columnar = column_encode(PayloadClass::Records, &payload).unwrap();
        for cut in 0..columnar.len() {
            assert!(
                column_decode(PayloadClass::Records, &columnar[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        // A stream length pointing past the input.
        let mut oversized = Vec::new();
        write_u64(&mut oversized, 1);
        write_u64(&mut oversized, 1_000_000);
        assert!(matches!(
            column_decode(PayloadClass::Execs, &oversized),
            Err(CompressError::LengthOverflow { .. })
        ));
        // An unknown record tag inside the tags column.
        let bad = write_streams(1, &[&[9u8], &[], &[], &[], &[], &[], &[], &[], &[], &[]]);
        assert!(matches!(
            column_decode(PayloadClass::Records, &bad),
            Err(CompressError::Codec(CodecError::BadTag { .. }))
        ));
        // Trailing bytes after the declared streams.
        let mut trailing = column_encode(PayloadClass::Records, &payload).unwrap();
        trailing.push(0);
        assert!(matches!(
            column_decode(PayloadClass::Records, &trailing),
            Err(CompressError::TrailingBytes { .. })
        ));
        // A count larger than the columns actually hold.
        let empty_streams = write_streams(5, &[&[], &[], &[], &[], &[], &[], &[], &[], &[], &[]]);
        assert!(matches!(
            column_decode(PayloadClass::Records, &empty_streams),
            Err(CompressError::Truncated { .. })
        ));
        // Row-side: a malformed row payload is rejected by the encoder.
        assert!(column_encode(PayloadClass::Records, &[0x07]).is_err());
    }

    #[test]
    fn overflowing_time_deltas_are_typed_errors_not_panics() {
        // A crafted times stream pairing deltas that sum past i64::MAX:
        // reconstruction must fail with NegativeTime, not overflow.
        let mut times = Vec::new();
        write_i64(&mut times, i64::MAX);
        write_i64(&mut times, 1);
        let mut seg_ids = Vec::new();
        write_i64(&mut seg_ids, 0);
        write_i64(&mut seg_ids, 0);
        let crafted = write_streams(2, &[&seg_ids, &times]);
        assert!(matches!(
            column_decode(PayloadClass::Execs, &crafted),
            Err(CompressError::Codec(CodecError::NegativeTime))
        ));
    }
}
