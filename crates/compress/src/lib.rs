#![forbid(unsafe_code)]
//! Per-chunk trace compression (`trace_compress`).
//!
//! The `.trc` v2 container frames trace data into self-contained chunks;
//! this crate supplies the codecs a chunk payload can be stored under,
//! addressed by the one-byte codec id in the chunk framing
//! (`trace_container`, spec in `docs/container-format.md`):
//!
//! | id | codec | layers |
//! |---:|-------|--------|
//! | 0 | [`Codec::None`] | raw row payload |
//! | 1 | [`Codec::Delta`] | trace-aware column transform ([`column`](mod@column)) |
//! | 2 | [`Codec::Lz`] | LZ byte compressor ([`lz`](mod@lz)) |
//! | 3 | [`Codec::DeltaLz`] | columns, then LZ over the column streams |
//!
//! The column transform splits a payload into per-field streams and
//! delta+zigzag+varint-codes the monotone ones (time stamps, region and
//! context ids, segment ids); the LZ backend is a self-contained greedy
//! hash-chain byte compressor with no external dependencies.  The two
//! compose: iterative traces turn into runs of zero deltas under the
//! transform, which the byte compressor then collapses — `delta-lz` is the
//! codec that makes container files pay for themselves at paper scale.
//!
//! Both layers are lossless and deterministic; decompression of untrusted
//! bytes is total (typed [`CompressError`], never a panic or unbounded
//! allocation).
//!
//! # Quick start
//!
//! ```
//! use trace_compress::{compress, decompress, Codec, PayloadClass};
//!
//! let payload = b"not trace-structured, so use the opaque class".to_vec();
//! let packed = compress(Codec::Lz, PayloadClass::Opaque, &payload).unwrap();
//! assert_eq!(decompress(Codec::Lz, PayloadClass::Opaque, &packed).unwrap(), payload);
//! ```

#![warn(missing_docs)]

pub mod column;
pub mod error;
pub mod lz;

pub use column::{column_decode, column_encode, PayloadClass};
pub use error::CompressError;
pub use lz::{lz_compress, lz_decompress};

/// A chunk-payload codec, addressed by the codec id byte in the `.trc` v2
/// chunk framing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Codec {
    /// Raw row payload, stored as-is.
    None,
    /// Trace-aware column transform only (delta+zigzag+varint field
    /// streams).
    Delta,
    /// LZ byte compression of the row payload.
    Lz,
    /// Column transform, then LZ over the column streams.
    DeltaLz,
}

impl Codec {
    /// Every codec, in id order.
    pub const ALL: [Codec; 4] = [Codec::None, Codec::Delta, Codec::Lz, Codec::DeltaLz];

    /// The codec id byte written to the chunk framing.
    pub fn as_byte(self) -> u8 {
        match self {
            Codec::None => 0,
            Codec::Delta => 1,
            Codec::Lz => 2,
            Codec::DeltaLz => 3,
        }
    }

    /// Parses a codec id byte; unknown ids are a typed error.
    pub fn from_byte(byte: u8) -> Result<Self, CompressError> {
        Ok(match byte {
            0 => Codec::None,
            1 => Codec::Delta,
            2 => Codec::Lz,
            3 => Codec::DeltaLz,
            other => return Err(CompressError::UnknownCodec(other)),
        })
    }

    /// The codec's CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            Codec::None => "none",
            Codec::Delta => "delta",
            Codec::Lz => "lz",
            Codec::DeltaLz => "delta-lz",
        }
    }

    /// Looks a codec up by its CLI-facing name.
    pub fn by_name(name: &str) -> Option<Self> {
        Codec::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Compresses a row chunk payload under `codec`.
///
/// `payload` must be canonical row bytes of the given class as produced by
/// the container writer (the column transform parses them); [`Codec::None`]
/// and [`Codec::Lz`] accept arbitrary bytes.  The output is *not*
/// guaranteed smaller — the container writer compares lengths and falls
/// back to [`Codec::None`] per chunk when compression does not pay.
pub fn compress(
    codec: Codec,
    class: PayloadClass,
    payload: &[u8],
) -> Result<Vec<u8>, CompressError> {
    Ok(match codec {
        Codec::None => payload.to_vec(),
        Codec::Delta => column_encode(class, payload)?,
        Codec::Lz => lz_compress(payload),
        Codec::DeltaLz => lz_compress(&column_encode(class, payload)?),
    })
}

/// Decompresses a chunk payload stored under `codec` back to row bytes.
///
/// Total on untrusted input: every malformed byte sequence maps to a typed
/// [`CompressError`].
pub fn decompress(
    codec: Codec,
    class: PayloadClass,
    payload: &[u8],
) -> Result<Vec<u8>, CompressError> {
    Ok(match codec {
        Codec::None => payload.to_vec(),
        Codec::Delta => column_decode(class, payload)?,
        Codec::Lz => lz_decompress(payload)?,
        Codec::DeltaLz => column_decode(class, &lz_decompress(payload)?)?,
    })
}

/// [`compress`] with observability: records a
/// [`trace_obs::Stage::Compress`] span plus `compress.bytes_in/out`
/// counters (one clock read pair per chunk, nothing per byte).  With a
/// disabled shard this is exactly [`compress`].
pub fn compress_observed(
    codec: Codec,
    class: PayloadClass,
    payload: &[u8],
    obs: &mut trace_obs::ObsShard,
) -> Result<Vec<u8>, CompressError> {
    let span = obs.start();
    let packed = compress(codec, class, payload)?;
    obs.end(trace_obs::Stage::Compress, span);
    obs.add(trace_obs::names::COMPRESS_BYTES_IN, payload.len() as u64);
    obs.add(trace_obs::names::COMPRESS_BYTES_OUT, packed.len() as u64);
    Ok(packed)
}

/// [`decompress`] with observability: records a
/// [`trace_obs::Stage::Compress`] span plus `decompress.bytes_in/out`
/// counters.  With a disabled shard this is exactly [`decompress`].
pub fn decompress_observed(
    codec: Codec,
    class: PayloadClass,
    payload: &[u8],
    obs: &mut trace_obs::ObsShard,
) -> Result<Vec<u8>, CompressError> {
    let span = obs.start();
    let unpacked = decompress(codec, class, payload)?;
    obs.end(trace_obs::Stage::Compress, span);
    obs.add(trace_obs::names::DECOMPRESS_BYTES_IN, payload.len() as u64);
    obs.add(
        trace_obs::names::DECOMPRESS_BYTES_OUT,
        unpacked.len() as u64,
    );
    Ok(unpacked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::codec::varint::write_u64;
    use trace_model::codec::write_record;
    use trace_model::{CommInfo, ContextId, Event, Rank, RegionId, Time, TraceRecord};

    /// An iterative trace payload with timing jitter: the *structure*
    /// repeats but the time stamps never do exactly, which is what real
    /// (and simulated) traces look like.
    fn repetitive_records_payload() -> Vec<u8> {
        let mut payload = Vec::new();
        let mut base = 0u64;
        let records: Vec<TraceRecord> = (0..64u64)
            .flat_map(|i| {
                // Deterministic per-iteration jitter, tens of nanoseconds.
                let jitter = (i * i * 2654435761) % 97;
                base += 500 + jitter;
                vec![
                    TraceRecord::SegmentBegin {
                        context: ContextId(0),
                        time: Time::from_nanos(base),
                    },
                    TraceRecord::Event(Event::with_comm(
                        RegionId(1),
                        Time::from_nanos(base + 10 + jitter / 4),
                        Time::from_nanos(base + 90 + jitter / 2),
                        CommInfo::Recv {
                            peer: Rank(3),
                            tag: 11,
                            bytes: 1024,
                        },
                    )),
                    TraceRecord::SegmentEnd {
                        context: ContextId(0),
                        time: Time::from_nanos(base + 100 + jitter),
                    },
                ]
            })
            .collect();
        write_u64(&mut payload, records.len() as u64);
        let mut prev = Time::ZERO;
        for record in &records {
            prev = write_record(&mut payload, record, prev);
        }
        payload
    }

    #[test]
    fn codec_ids_round_trip_and_unknown_ids_error() {
        for codec in Codec::ALL {
            assert_eq!(Codec::from_byte(codec.as_byte()).unwrap(), codec);
            assert_eq!(Codec::by_name(codec.name()), Some(codec));
        }
        assert!(matches!(
            Codec::from_byte(4),
            Err(CompressError::UnknownCodec(4))
        ));
        assert_eq!(Codec::by_name("zstd"), None);
    }

    #[test]
    fn every_codec_round_trips_a_records_payload() {
        let payload = repetitive_records_payload();
        for codec in Codec::ALL {
            let packed = compress(codec, PayloadClass::Records, &payload).unwrap();
            let unpacked = decompress(codec, PayloadClass::Records, &packed).unwrap();
            assert_eq!(unpacked, payload, "{}", codec.name());
        }
    }

    #[test]
    fn delta_lz_beats_lz_alone_on_repetitive_trace_data() {
        let payload = repetitive_records_payload();
        let lz = compress(Codec::Lz, PayloadClass::Records, &payload).unwrap();
        let delta_lz = compress(Codec::DeltaLz, PayloadClass::Records, &payload).unwrap();
        assert!(lz.len() < payload.len());
        assert!(
            delta_lz.len() <= lz.len(),
            "delta-lz {} vs lz {} vs raw {}",
            delta_lz.len(),
            lz.len(),
            payload.len()
        );
    }
}
