//! Property tests for the compression subsystem: every codec round-trips
//! every payload class over randomized traces, the LZ backend round-trips
//! arbitrary bytes, and corrupted inputs yield typed errors — never panics.

use proptest::prelude::*;
use trace_compress::{compress, decompress, lz_compress, lz_decompress, Codec, PayloadClass};
use trace_model::codec::varint::write_u64;
use trace_model::codec::{write_exec, write_record, write_stored_segment};
use trace_model::{Time, TraceRecord};
use trace_sim::specgen::{trace_from_specs, SegmentSpec};

fn build_trace(rank_specs: &[Vec<SegmentSpec>]) -> trace_model::AppTrace {
    trace_from_specs("compressprop", rank_specs)
}

/// A rank's records as a row payload (count varint + records), the exact
/// shape a `RECORDS` chunk stores — the whole rank in one chunk.
fn records_payload(records: &[TraceRecord]) -> Vec<u8> {
    let mut payload = Vec::new();
    write_u64(&mut payload, records.len() as u64);
    let mut prev = Time::ZERO;
    for record in records {
        prev = write_record(&mut payload, record, prev);
    }
    payload
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_codec_round_trips_records_payloads(rank_specs in prop::collection::vec(
        prop::collection::vec((0u8..4, 0u8..4, 0u16..2000), 0..12),
        1..4,
    )) {
        let app = build_trace(&rank_specs);
        for rank in &app.ranks {
            let payload = records_payload(&rank.records);
            for codec in Codec::ALL {
                let packed = compress(codec, PayloadClass::Records, &payload)
                    .expect("writer payloads compress");
                let unpacked = decompress(codec, PayloadClass::Records, &packed)
                    .expect("round trip");
                prop_assert_eq!(&unpacked, &payload, "{}", codec.name());
            }
        }
    }

    #[test]
    fn every_codec_round_trips_stored_and_exec_payloads(rank_specs in prop::collection::vec(
        prop::collection::vec((0u8..3, 0u8..3, 0u16..1500), 1..10),
        1..3,
    )) {
        use trace_reduce::{Method, MethodConfig, Reducer};
        let app = build_trace(&rank_specs);
        let reduced = Reducer::new(MethodConfig::with_default_threshold(Method::RelDiff))
            .reduce_app(&app);
        for rank in &reduced.ranks {
            let mut stored = Vec::new();
            write_u64(&mut stored, rank.stored.len() as u64);
            for segment in &rank.stored {
                write_stored_segment(&mut stored, segment);
            }
            let mut execs = Vec::new();
            write_u64(&mut execs, rank.execs.len() as u64);
            let mut prev = Time::ZERO;
            for exec in &rank.execs {
                prev = write_exec(&mut execs, exec, prev);
            }
            for codec in Codec::ALL {
                for (class, payload) in
                    [(PayloadClass::Stored, &stored), (PayloadClass::Execs, &execs)]
                {
                    let packed = compress(codec, class, payload).expect("compress");
                    prop_assert_eq!(
                        &decompress(codec, class, &packed).expect("round trip"),
                        payload,
                        "{} {:?}",
                        codec.name(),
                        class
                    );
                }
            }
        }
    }

    #[test]
    fn lz_round_trips_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let packed = lz_compress(&bytes);
        prop_assert_eq!(lz_decompress(&packed).expect("round trip"), bytes);
    }

    #[test]
    fn corrupted_compressed_payloads_never_panic(
        rank_specs in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u8..3, 0u16..1000), 1..8),
            1..2,
        ),
        flip_fraction in 0.0f64..1.0,
        flip_mask in 1u8..255,
    ) {
        let app = build_trace(&rank_specs);
        let payload = records_payload(&app.ranks[0].records);
        for codec in [Codec::Delta, Codec::Lz, Codec::DeltaLz] {
            let mut packed = compress(codec, PayloadClass::Records, &payload).unwrap();
            let pos = ((packed.len() - 1) as f64 * flip_fraction) as usize;
            packed[pos] ^= flip_mask;
            // Either the corruption decodes to *something* (the container's
            // CRC is what guarantees detection; the codec only guarantees
            // totality) or it is a typed error — it must never panic.
            let _ = decompress(codec, PayloadClass::Records, &packed);
        }
    }

    #[test]
    fn truncated_compressed_payloads_are_errors(
        rank_specs in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u8..3, 0u16..1000), 1..8),
            1..2,
        ),
        cut_fraction in 0.0f64..1.0,
    ) {
        let app = build_trace(&rank_specs);
        let payload = records_payload(&app.ranks[0].records);
        for codec in [Codec::Delta, Codec::Lz, Codec::DeltaLz] {
            let packed = compress(codec, PayloadClass::Records, &payload).unwrap();
            let cut = ((packed.len() - 1) as f64 * cut_fraction) as usize;
            prop_assert!(
                decompress(codec, PayloadClass::Records, &packed[..cut]).is_err(),
                "{} cut at {}",
                codec.name(),
                cut
            );
        }
    }
}
