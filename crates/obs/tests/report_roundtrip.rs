//! Property tests: randomly recorded runs survive the JSON schema
//! round-trip losslessly, and every sink renders without panicking.

use std::sync::Arc;

use proptest::prelude::*;
use trace_obs::{json, Clock, ManualClock, Recorder, RunReport, Stage};

/// Names a random run can record against (the report schema does not care
/// which names exist, only that they are stable strings).
const COUNTER_NAMES: [&str; 3] = [
    trace_obs::names::MATCH_COMPARISONS,
    trace_obs::names::STREAM_SEGMENTS,
    trace_obs::names::CHUNK_READS,
];
const GAUGE_NAMES: [&str; 2] = [
    trace_obs::names::STREAM_PEAK_CHUNK_BYTES,
    trace_obs::names::STREAM_PEAK_RESIDENT_SEGMENTS,
];

struct ArcClock(Arc<ManualClock>);

impl Clock for ArcClock {
    fn now_ns(&self) -> u64 {
        self.0.now_ns()
    }
}

/// Replays `ops` through a sharded recorder and snapshots the report.
/// Each op: (kind, name selector, value).
fn record_run(shards: usize, ops: &[(u8, u8, u64)]) -> RunReport {
    let clock = Arc::new(ManualClock::new(0));
    let recorder = Recorder::with_clock(ArcClock(Arc::clone(&clock)));
    let mut handles: Vec<_> = (0..shards).map(|_| recorder.shard()).collect();
    for (i, &(kind, name, value)) in ops.iter().enumerate() {
        let shard = &mut handles[i % shards];
        match kind % 4 {
            0 => shard.add(COUNTER_NAMES[name as usize % COUNTER_NAMES.len()], value),
            1 => shard.gauge_max(GAUGE_NAMES[name as usize % GAUGE_NAMES.len()], value),
            2 => shard.observe("segment.len", value),
            _ => {
                let span = shard.start();
                clock.advance(value);
                let stage = Stage::ALL[name as usize % Stage::ALL.len()];
                shard.end(stage, span);
            }
        }
    }
    drop(handles);
    recorder.report()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn json_round_trip_is_lossless(
        shards in 1usize..4,
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), 0u64..1_000_000_000), 0..64),
    ) {
        let report = record_run(shards, &ops);
        let rendered = report.render_json();
        let back = RunReport::from_json(&rendered).expect("own output validates");
        prop_assert_eq!(&back, &report);
        // Re-rendering the parsed report is byte-identical: the schema has
        // one canonical serialization.
        prop_assert_eq!(back.render_json(), rendered);
    }

    #[test]
    fn every_sink_renders_and_chrome_trace_is_parseable(
        shards in 1usize..4,
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), 0u64..1_000_000), 0..48),
    ) {
        let report = record_run(shards, &ops);
        let text = report.render_text();
        prop_assert!(text.starts_with("== run report =="));
        // The chrome trace export must itself be JSON our parser accepts.
        // Timestamps are decimal microseconds (the one float in any sink)
        // and nothing else in the document contains a '.', so deleting
        // dots turns them into integers without touching the structure.
        let trace = report.render_chrome_trace();
        prop_assert!(trace.contains("\"traceEvents\""));
        let no_floats = trace.replace('.', "");
        prop_assert!(json::parse(no_floats.trim()).is_ok(), "{trace}");
    }
}
