//! Counters, gauges and log-bucketed histograms.
//!
//! A [`MetricSet`] is the mergeable value store behind recorder shards:
//! counters add, gauges keep the maximum, histograms merge bucket-wise.
//! Histograms bucket by bit length (powers of two), so recording is a
//! couple of integer instructions and merging is exact — no configuration,
//! no floating-point state, deterministic under any merge order.

use std::collections::BTreeMap;

/// Number of histogram buckets: one per bit length of a `u64`, plus the
/// zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a recorded value: 0 for zero, otherwise the value's
/// bit length (1..=64).
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket: bucket `i` holds values in
/// `(bucket_upper_bound(i-1), bucket_upper_bound(i)]`.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A log2-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Merges another histogram into this one (bucket-wise, exact).
    pub fn absorb(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (integer division), or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 <= q <= 1.0`), or 0 when empty.  Log bucketing means this is
    /// an upper bound within 2x of the true quantile, which is all a
    /// latency summary needs.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), at least 1: the rank of the quantile sample.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                return bucket_upper_bound(index).min(self.max);
            }
        }
        self.max
    }

    /// `(inclusive upper bound, sample count)` for each non-empty bucket,
    /// in increasing bound order.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| (bucket_upper_bound(index), count))
            .collect()
    }
}

/// A mergeable set of named counters, gauges and histograms.
///
/// Metric names are `&'static str` by design: every name in the workspace
/// lives in [`crate::names`], the single source of truth the text summary,
/// the JSON schema and the docs all share.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricSet {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricSet {
    /// Adds `delta` to the named counter.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Raises the named gauge to `value` if larger (high-water mark).
    pub fn gauge_max(&mut self, name: &'static str, value: u64) {
        let gauge = self.gauges.entry(name).or_insert(0);
        *gauge = (*gauge).max(value);
    }

    /// Records `value` into the named histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Merges another set into this one: counters add, gauges keep the
    /// maximum, histograms merge bucket-wise.  Exact and order-independent.
    pub fn absorb(&mut self, other: &MetricSet) {
        for (&name, &value) in &other.counters {
            self.add(name, value);
        }
        for (&name, &value) in &other.gauges {
            self.gauge_max(name, value);
        }
        for (&name, histogram) in &other.histograms {
            self.histograms.entry(name).or_default().absorb(histogram);
        }
    }

    /// The named counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value (0 when never touched).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&name, &value)| (name, value))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(&name, &value)| (name, value))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&name, h)| (name, h))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for value in [0u64, 1, 7, 8, 1023, 1024, u64::MAX] {
            let index = bucket_index(value);
            assert!(value <= bucket_upper_bound(index));
            if index > 0 {
                assert!(value > bucket_upper_bound(index - 1));
            }
        }
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::default();
        assert_eq!((h.count(), h.min(), h.max(), h.mean()), (0, 0, 0, 0));
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 26);
        // p50 falls in the bucket of 2..3 (upper bound 3); p100 is the max.
        assert_eq!(h.quantile_upper_bound(0.5), 3);
        assert_eq!(h.quantile_upper_bound(1.0), 100);
    }

    #[test]
    fn absorb_is_exact_and_order_independent() {
        let mut a = MetricSet::default();
        a.add("x", 2);
        a.gauge_max("g", 10);
        a.observe("h", 5);
        let mut b = MetricSet::default();
        b.add("x", 3);
        b.gauge_max("g", 7);
        b.observe("h", 900);

        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("x"), 5);
        assert_eq!(ab.gauge("g"), 10);
        let h = ab.histogram("h").unwrap();
        assert_eq!((h.count(), h.min(), h.max()), (2, 5, 900));
    }
}
