//! The recorder: sharded metric collection with stage span timers.
//!
//! A [`Recorder`] is either disabled (a `None` inside, every operation a
//! no-op) or an `Arc`-shared registry.  Work happens against [`ObsShard`]
//! handles — one per worker thread — which buffer counters and spans
//! locally and merge into the registry on [`ObsShard::finish`] (or drop),
//! so the hot path never takes a lock.  Stage timings use explicit
//! [`ObsShard::start`]/[`ObsShard::end`] pairs rather than RAII guards so
//! a span can bracket code that also records counters on the same shard.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::MetricSet;
use crate::names::OBS_SPANS_DROPPED;
use crate::report::RunReport;

/// Cap on buffered spans per shard; beyond it spans are counted into the
/// `obs.spans_dropped` counter instead of silently vanishing.
pub const MAX_SPANS_PER_SHARD: usize = 65_536;

/// A pipeline stage whose duration the recorder can measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Reading and decoding an input trace (text or binary).
    Parse,
    /// Cutting a rank's event stream into candidate segments.
    Segment,
    /// Matching candidate segments against stored representatives.
    Match,
    /// Inserting a newly stored representative into the candidate index.
    Index,
    /// Encoding and writing reduced output.
    Store,
    /// Running a codec over a chunk payload (either direction).
    Compress,
    /// Reading and CRC-checking a chunk frame from a container.
    ChunkIo,
    /// One rank section of the fused streaming loop, where parse, segment
    /// and match interleave per record and cannot be timed separately.
    Rank,
}

impl Stage {
    /// Every stage, in taxonomy order.
    pub const ALL: [Stage; 8] = [
        Stage::Parse,
        Stage::Segment,
        Stage::Match,
        Stage::Index,
        Stage::Store,
        Stage::Compress,
        Stage::ChunkIo,
        Stage::Rank,
    ];

    /// The stage's stable snake_case name (part of the JSON schema).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Segment => "segment",
            Stage::Match => "match",
            Stage::Index => "index",
            Stage::Store => "store",
            Stage::Compress => "compress",
            Stage::ChunkIo => "chunk_io",
            Stage::Rank => "rank",
        }
    }

    /// Name of the histogram that accumulates this stage's span durations.
    pub fn histogram_name(self) -> &'static str {
        match self {
            Stage::Parse => "span.parse.ns",
            Stage::Segment => "span.segment.ns",
            Stage::Match => "span.match.ns",
            Stage::Index => "span.index.ns",
            Stage::Store => "span.store.ns",
            Stage::Compress => "span.compress.ns",
            Stage::ChunkIo => "span.chunk_io.ns",
            Stage::Rank => "span.rank.ns",
        }
    }

    /// Parses a stage from its stable name.
    pub fn by_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// One completed stage span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Which stage ran.
    pub stage: Stage,
    /// The shard (≈ worker thread) that recorded it.
    pub shard: u32,
    /// Start reading of the recorder's clock, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// An in-flight span: the clock reading at [`ObsShard::start`], or nothing
/// when the shard is disabled.  `Copy`, so holding one never borrows the
/// shard.
#[derive(Clone, Copy, Debug)]
pub struct SpanStart(Option<u64>);

struct Merged {
    metrics: MetricSet,
    spans: Vec<SpanRecord>,
    dropped_spans: u64,
}

struct RecorderInner {
    clock: Arc<dyn Clock>,
    merged: Mutex<Merged>,
    next_shard: AtomicU32,
}

/// Handle to a run's metric registry, cheap to clone and share.
///
/// Disabled recorders ([`Recorder::disabled`]) carry no allocation and make
/// every recording call a no-op, so instrumented code paths cost nothing
/// when observability is off.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

impl Recorder {
    /// A recorder that records nothing, at no cost.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A live recorder timing against the real monotonic clock.
    pub fn enabled() -> Recorder {
        Recorder::with_clock(MonotonicClock::new())
    }

    /// A live recorder timing against an injected clock (tests use a
    /// [`crate::ManualClock`] for exactly reproducible reports).
    pub fn with_clock(clock: impl Clock + 'static) -> Recorder {
        Recorder {
            inner: Some(Arc::new(RecorderInner {
                clock: Arc::new(clock),
                merged: Mutex::new(Merged {
                    metrics: MetricSet::default(),
                    spans: Vec::new(),
                    dropped_spans: 0,
                }),
                next_shard: AtomicU32::new(0),
            })),
        }
    }

    /// True when this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a new shard for one worker's recordings.  Shards buffer
    /// locally and merge into the registry when finished or dropped.
    pub fn shard(&self) -> ObsShard {
        match &self.inner {
            None => ObsShard::disabled(),
            Some(inner) => ObsShard {
                inner: Some(Box::new(ShardInner {
                    id: inner.next_shard.fetch_add(1, Ordering::Relaxed),
                    clock: Arc::clone(&inner.clock),
                    home: Arc::clone(inner),
                    metrics: MetricSet::default(),
                    spans: Vec::new(),
                    dropped_spans: 0,
                })),
            },
        }
    }

    /// Snapshots everything merged so far into a [`RunReport`].  Call after
    /// all shards have finished; unfinished shards' data is absent.
    pub fn report(&self) -> RunReport {
        match &self.inner {
            None => RunReport::default(),
            Some(inner) => {
                let merged = inner.merged.lock();
                let mut metrics = merged.metrics.clone();
                if merged.dropped_spans > 0 {
                    metrics.add(OBS_SPANS_DROPPED, merged.dropped_spans);
                }
                let mut spans = merged.spans.clone();
                spans.sort_by_key(|s| (s.start_ns, s.shard, s.dur_ns, s.stage));
                RunReport::from_parts(&metrics, spans)
            }
        }
    }
}

struct ShardInner {
    id: u32,
    clock: Arc<dyn Clock>,
    home: Arc<RecorderInner>,
    metrics: MetricSet,
    spans: Vec<SpanRecord>,
    dropped_spans: u64,
}

/// One worker's buffered view of a [`Recorder`].
///
/// Not `Clone`: each worker gets its own shard from [`Recorder::shard`].
/// [`ObsShard::disabled`] allocates nothing, so callers without a recorder
/// can construct one per call site for free.
#[derive(Default)]
pub struct ObsShard {
    inner: Option<Box<ShardInner>>,
}

impl ObsShard {
    /// A shard that records nothing, at no cost.
    pub fn disabled() -> ObsShard {
        ObsShard { inner: None }
    }

    /// True when this shard actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn add(&mut self, name: &'static str, delta: u64) {
        if let Some(inner) = &mut self.inner {
            inner.metrics.add(name, delta);
        }
    }

    /// Raises the named gauge to `value` if larger.
    #[inline]
    pub fn gauge_max(&mut self, name: &'static str, value: u64) {
        if let Some(inner) = &mut self.inner {
            inner.metrics.gauge_max(name, value);
        }
    }

    /// Records `value` into the named histogram.
    #[inline]
    pub fn observe(&mut self, name: &'static str, value: u64) {
        if let Some(inner) = &mut self.inner {
            inner.metrics.observe(name, value);
        }
    }

    /// Reads the clock to open a span.  Pair with [`ObsShard::end`].
    #[inline]
    pub fn start(&self) -> SpanStart {
        SpanStart(self.inner.as_ref().map(|inner| inner.clock.now_ns()))
    }

    /// Closes a span opened by [`ObsShard::start`]: records its duration
    /// into the stage's histogram and buffers a [`SpanRecord`] for the
    /// trace export (up to [`MAX_SPANS_PER_SHARD`]; overflow is counted,
    /// not silent).
    pub fn end(&mut self, stage: Stage, start: SpanStart) {
        let (Some(inner), SpanStart(Some(start_ns))) = (&mut self.inner, start) else {
            return;
        };
        let dur_ns = inner.clock.now_ns().saturating_sub(start_ns);
        inner.metrics.observe(stage.histogram_name(), dur_ns);
        if inner.spans.len() < MAX_SPANS_PER_SHARD {
            inner.spans.push(SpanRecord {
                stage,
                shard: inner.id,
                start_ns,
                dur_ns,
            });
        } else {
            inner.dropped_spans += 1;
        }
    }

    /// Merges this shard's buffered data into its recorder.  Dropping the
    /// shard does the same; `finish` just makes the flush point explicit.
    pub fn finish(self) {
        drop(self);
    }

    fn flush(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let mut merged = inner.home.merged.lock();
        merged.metrics.absorb(&inner.metrics);
        merged.spans.extend_from_slice(&inner.spans);
        merged.dropped_spans += inner.dropped_spans;
    }
}

impl Drop for ObsShard {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::Arc as StdArc;

    #[test]
    fn stage_names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::by_name(stage.name()), Some(stage));
        }
        assert_eq!(Stage::by_name("nope"), None);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let recorder = Recorder::disabled();
        assert!(!recorder.is_enabled());
        let mut shard = recorder.shard();
        assert!(!shard.is_enabled());
        shard.add("x", 1);
        let span = shard.start();
        shard.end(Stage::Match, span);
        shard.finish();
        let report = recorder.report();
        assert!(report.counters.is_empty());
        assert!(report.spans.is_empty());
    }

    #[test]
    fn shards_merge_exactly() {
        let clock = ManualClock::new(0);
        let recorder = Recorder::with_clock(clock);
        let mut a = recorder.shard();
        let mut b = recorder.shard();
        a.add("match.comparisons", 3);
        b.add("match.comparisons", 4);
        a.gauge_max("stream.peak_chunk_bytes", 10);
        b.gauge_max("stream.peak_chunk_bytes", 90);
        a.finish();
        b.finish();
        let report = recorder.report();
        assert_eq!(report.counters.get("match.comparisons"), Some(&7));
        assert_eq!(report.gauges.get("stream.peak_chunk_bytes"), Some(&90));
    }

    #[test]
    fn spans_use_the_injected_clock() {
        let clock = StdArc::new(ManualClock::new(100));
        let recorder = Recorder::with_clock(SharedClock(StdArc::clone(&clock)));
        let mut shard = recorder.shard();
        let span = shard.start();
        clock.advance(250);
        shard.end(Stage::Rank, span);
        shard.finish();
        let report = recorder.report();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].stage, Stage::Rank);
        assert_eq!(report.spans[0].start_ns, 100);
        assert_eq!(report.spans[0].dur_ns, 250);
        let h = report.histograms.get(Stage::Rank.histogram_name()).unwrap();
        assert_eq!((h.count, h.sum), (1, 250));
    }

    #[test]
    fn span_overflow_is_counted_not_silent() {
        let clock = ManualClock::new(0);
        let recorder = Recorder::with_clock(clock);
        let mut shard = recorder.shard();
        for _ in 0..(MAX_SPANS_PER_SHARD + 5) {
            let span = shard.start();
            shard.end(Stage::Compress, span);
        }
        shard.finish();
        let report = recorder.report();
        assert_eq!(report.spans.len(), MAX_SPANS_PER_SHARD);
        assert_eq!(report.counters.get(OBS_SPANS_DROPPED), Some(&5));
    }

    #[test]
    fn dropping_a_shard_flushes_it() {
        let recorder = Recorder::with_clock(ManualClock::new(0));
        {
            let mut shard = recorder.shard();
            shard.add("stream.ranks", 2);
        }
        assert_eq!(recorder.report().counters.get("stream.ranks"), Some(&2));
    }

    struct SharedClock(StdArc<ManualClock>);

    impl Clock for SharedClock {
        fn now_ns(&self) -> u64 {
            self.0.now_ns()
        }
    }
}
