//! Canonical metric names.
//!
//! Every counter and gauge the pipeline records lives here, so the text
//! summary, the JSON report and `docs/observability.md` cannot drift apart
//! and the benches stop hand-rolling their own stat lines.  Names are
//! dot-separated `component.metric` identifiers; they are part of the
//! stable JSON schema, so renaming one is a schema change.

/// Candidate pairs visited by the similarity matcher.
pub const MATCH_COMPARISONS: &str = "match.comparisons";
/// Comparisons rejected by an O(1) prefilter bound before any kernel ran.
pub const MATCH_PREFILTER_REJECTS: &str = "match.prefilter_rejects";
/// Comparisons abandoned mid-kernel once the running sum exceeded the
/// threshold bound.
pub const MATCH_EARLY_ABANDONS: &str = "match.early_abandons";
/// Comparisons whose kernel ran to completion.
pub const MATCH_FULL_KERNELS: &str = "match.full_kernels";
/// Comparisons that accepted.
pub const MATCH_MATCHES: &str = "match.matches";
/// Candidates skipped unvisited by the index's sorted center window.
pub const MATCH_INDEX_WINDOW_PRUNES: &str = "match.index_window_prunes";
/// Candidates skipped unvisited by an origin/pivot triangle bound.
pub const MATCH_INDEX_PIVOT_PRUNES: &str = "match.index_pivot_prunes";
/// Same-shape stored candidates eligible across all queries.
pub const MATCH_ELIGIBLE: &str = "match.eligible";

/// Rank sections reduced by a streaming driver.
pub const STREAM_RANKS: &str = "stream.ranks";
/// Event records seen in reduced ranks.
pub const STREAM_EVENTS: &str = "stream.events";
/// Segments cut from the stream and fed to the reducer.
pub const STREAM_SEGMENTS: &str = "stream.segments";
/// Stored representative segments in the output.
pub const STREAM_STORED: &str = "stream.stored";
/// Segment executions in the output.
pub const STREAM_EXECS: &str = "stream.execs";
/// Events encountered outside any segment (dropped).
pub const STREAM_ORPHAN_EVENTS: &str = "stream.orphan_events";
/// Segments closed implicitly (missing or mismatched end markers).
pub const STREAM_UNTERMINATED_SEGMENTS: &str = "stream.unterminated_segments";
/// Gauge: peak resident segments (stored + in-flight) of any one worker.
pub const STREAM_PEAK_RESIDENT_SEGMENTS: &str = "stream.peak_resident_segments";
/// Gauge: largest chunk payload buffered by any one reader, in bytes.
pub const STREAM_PEAK_CHUNK_BYTES: &str = "stream.peak_chunk_bytes";

/// Payload chunks read (and CRC-verified) from containers.
pub const CHUNK_READS: &str = "chunk.reads";
/// Payload chunks written to containers.
pub const CHUNK_WRITES: &str = "chunk.writes";
/// Chunks whose compressed form was not smaller and were stored raw.
pub const CHUNK_COMPRESS_FALLBACKS: &str = "chunk.compress_fallbacks";

/// Bytes entering `compress()` (pre-compression payload bytes).
pub const COMPRESS_BYTES_IN: &str = "compress.bytes_in";
/// Bytes leaving `compress()` (compressed payload bytes).
pub const COMPRESS_BYTES_OUT: &str = "compress.bytes_out";
/// Bytes entering `decompress()` (stored payload bytes).
pub const DECOMPRESS_BYTES_IN: &str = "decompress.bytes_in";
/// Bytes leaving `decompress()` (decoded payload bytes).
pub const DECOMPRESS_BYTES_OUT: &str = "decompress.bytes_out";

/// Spans dropped by the per-shard cap (never silently: see
/// `docs/observability.md`).
pub const OBS_SPANS_DROPPED: &str = "obs.spans_dropped";

/// Per-codec counter: chunks stored on disk under the codec (after the
/// raw fallback decided).  `codec_name` is `trace_compress::Codec::name()`.
pub fn codec_chunks(codec_name: &str) -> &'static str {
    match codec_name {
        "none" => "codec.none.chunks",
        "delta" => "codec.delta.chunks",
        "lz" => "codec.lz.chunks",
        "delta-lz" => "codec.delta-lz.chunks",
        _ => "codec.other.chunks",
    }
}

/// Per-codec counter: uncompressed payload bytes of chunks stored under
/// the codec.
pub fn codec_raw_bytes(codec_name: &str) -> &'static str {
    match codec_name {
        "none" => "codec.none.raw_bytes",
        "delta" => "codec.delta.raw_bytes",
        "lz" => "codec.lz.raw_bytes",
        "delta-lz" => "codec.delta-lz.raw_bytes",
        _ => "codec.other.raw_bytes",
    }
}

/// Per-codec counter: on-disk payload bytes of chunks stored under the
/// codec.
pub fn codec_stored_bytes(codec_name: &str) -> &'static str {
    match codec_name {
        "none" => "codec.none.stored_bytes",
        "delta" => "codec.delta.stored_bytes",
        "lz" => "codec.lz.stored_bytes",
        "delta-lz" => "codec.delta-lz.stored_bytes",
        _ => "codec.other.stored_bytes",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_names_map_to_distinct_metrics() {
        let names: Vec<&str> = ["none", "delta", "lz", "delta-lz"]
            .iter()
            .map(|c| codec_stored_bytes(c))
            .collect();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped);
        assert_eq!(codec_chunks("zstd"), "codec.other.chunks");
    }
}
