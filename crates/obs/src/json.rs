//! Minimal JSON tree, renderer and panic-free parser.
//!
//! The workspace vendors no serde, so the run-report schema is emitted and
//! parsed by hand.  The value model is deliberately narrow: the report
//! schema only ever contains objects, arrays, strings, booleans, null and
//! *unsigned integers* — durations and byte counts in `u64`, which JSON
//! `f64` numbers could not hold losslessly.  The parser therefore rejects
//! floats and negative numbers outright rather than rounding them.
//!
//! This file is on the xtask lint's decode surface: no indexing, no
//! `unwrap`/`expect`, errors are values.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (all the schema ever emits).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The integer value, if this is a `UInt`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::UInt(v) => {
                out.push_str(&v.to_string());
            }
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document.  Rejects trailing garbage, floats,
/// negative numbers and nesting deeper than `MAX_DEPTH` (128); never
/// panics.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    match p.peek() {
        None => Ok(value),
        Some(_) => Err(p.err("trailing characters after document")),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn err(&self, message: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, message)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        match self.bump() {
            Some(b) if b == expected => Ok(()),
            Some(b) => Err(self.err(&format!(
                "expected '{}', found '{}'",
                expected as char, b as char
            ))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn eat_keyword(&mut self, keyword: &str, value: JsonValue) -> Result<JsonValue, String> {
        for expected in keyword.bytes() {
            self.eat(expected)?;
        }
        Ok(value)
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat_keyword("null", JsonValue::Null),
            Some(b't') => self.eat_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_keyword("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(self.err("negative numbers are outside the report schema")),
            Some(b) => Err(self.err(&format!("unexpected character '{}'", b as char))),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let mut value: u64 = 0;
        let mut digits = 0usize;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            self.pos += 1;
            digits += 1;
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(b - b'0')))
                .ok_or_else(|| self.err("integer overflows u64"))?;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("non-integer numbers are outside the report schema"));
        }
        Ok(JsonValue::UInt(value))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: require a \uXXXX low surrogate.
                            self.eat(b'\\')?;
                            self.eat(b'u')?;
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence
                    // is valid; collect its continuation bytes.
                    let mut buf = vec![b];
                    while matches!(self.peek(), Some(next) if (0x80..0xC0).contains(&next)) {
                        match self.bump() {
                            Some(next) => buf.push(next),
                            None => break,
                        }
                    }
                    match std::str::from_utf8(&buf) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8 in string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in unicode escape")),
            };
            code = (code << 4) | digit;
        }
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Arr(items)),
                Some(_) => return Err(self.err("expected ',' or ']' in array")),
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Obj(entries)),
                Some(_) => return Err(self.err("expected ',' or '}' in object")),
                None => return Err(self.err("unterminated object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_the_schema_uses() {
        let doc = r#"{"a":1,"b":[true,null,"x"],"c":{"d":18446744073709551615}}"#;
        let value = parse(doc).unwrap();
        assert_eq!(value.get("a").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            value
                .get("c")
                .and_then(|c| c.get("d"))
                .and_then(JsonValue::as_u64),
            Some(u64::MAX)
        );
        assert_eq!(parse(&value.render()).unwrap(), value);
    }

    #[test]
    fn rejects_what_the_schema_never_emits() {
        assert!(parse("-1").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("18446744073709551616").is_err());
        assert!(parse("{\"a\":1} junk").is_err());
        assert!(parse("{\"a\"").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = JsonValue::Str("a\"b\\c\nd\te\u{1}é☃".to_string());
        let rendered = original.render();
        assert_eq!(parse(&rendered).unwrap(), original);
        // Unicode escapes and surrogate pairs parse too.
        assert_eq!(
            parse(r#""é😀""#).unwrap(),
            JsonValue::Str("é😀".to_string())
        );
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }
}
