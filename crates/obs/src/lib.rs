//! Self-instrumentation for the trace-reduction pipeline.
//!
//! The pipeline's stages (parse, segment, match, index, store, compress,
//! chunk I/O) each kept private counters that benches printed ad-hoc.
//! This crate unifies them: a [`Recorder`] owns a run's metrics — counters,
//! high-water gauges and log-bucketed histograms — plus stage span timers,
//! collected through per-worker [`ObsShard`]s that merge lock-free on the
//! hot path and exactly at the end.
//!
//! Three properties the rest of the workspace relies on:
//!
//! * **Zero-cost when disabled.**  [`Recorder::disabled`] and
//!   [`ObsShard::disabled`] allocate nothing and reduce every recording
//!   call to a `None` check, so instrumented code paths are free in
//!   ordinary runs.
//! * **Never behaviour-changing.**  Recording observes, it does not steer;
//!   reduction output is bit-identical with observability on or off
//!   (enforced by the `obs_neutrality` test in `trace_stream`).
//! * **The one audited clock.**  The xtask determinism lint bans
//!   `Instant`/`SystemTime` across core crates, this one included; timing
//!   flows through the injectable [`Clock`] trait, and the only monotonic
//!   implementation lives in [`clock`] behind audited `lint:allow`
//!   entries.  Tests inject a [`ManualClock`] and assert exact reports.
//!
//! Reports come out of [`Recorder::report`] as a [`RunReport`] with three
//! sinks: a text summary ([`RunReport::render_text`]), versioned JSON
//! ([`RunReport::render_json`], schema in `docs/observability.md`) and a
//! chrome://tracing span export ([`RunReport::render_chrome_trace`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod clock;
pub mod json;
pub mod metrics;
pub mod names;
pub mod recorder;
pub mod report;

pub use chrome::ChromeEvent;
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{Histogram, MetricSet};
pub use recorder::{ObsShard, Recorder, SpanRecord, SpanStart, Stage, MAX_SPANS_PER_SHARD};
pub use report::{HistogramSnapshot, RunReport, SCHEMA_NAME, SCHEMA_VERSION};
