//! Shared chrome://tracing "trace event" writer and reader.
//!
//! Two exports in the workspace speak this format: the pipeline-span
//! export ([`crate::RunReport::render_chrome_trace`]) and the reduced
//! timeline export in `trace_report`.  Both render through [`render`], so
//! the two outputs cannot drift apart: one writer owns the event object
//! layout, the microsecond formatting and the string escaping.
//!
//! The document is the chrome://tracing / Perfetto "JSON object format":
//! complete (`"ph":"X"`) events with microsecond `ts`/`dur` values.
//! Timestamps are kept as exact nanosecond integers in [`ChromeEvent`] and
//! formatted as fixed three-decimal microsecond literals, so rendering is
//! pure integer arithmetic and byte-stable across platforms.
//!
//! [`parse`] reads the format back for round-trip tests and tooling.  It
//! cannot reuse [`crate::json::parse`], which deliberately rejects float
//! literals — chrome timestamps are fractional microseconds — so this file
//! carries its own small reader.  Like the run-report parser it is on the
//! xtask lint's decode surface: no indexing, no `unwrap`/`expect`, errors
//! are values.

use crate::json::escape_into;

/// One complete ("X") trace event with exact nanosecond times.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChromeEvent {
    /// Event name (shown on the slice).
    pub name: String,
    /// Category tag (used by the UI for filtering).
    pub cat: String,
    /// Process id lane.
    pub pid: u64,
    /// Thread id lane within the process.
    pub tid: u64,
    /// Start time in nanoseconds (rendered as microseconds).
    pub ts_ns: u64,
    /// Duration in nanoseconds (rendered as microseconds).
    pub dur_ns: u64,
}

/// Renders events as a chrome://tracing "trace event" JSON document
/// (`displayTimeUnit` ms, one complete event per entry, microsecond
/// timestamps, trailing newline).
pub fn render(events: &[ChromeEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        escape_into(&event.name, &mut out);
        out.push_str(",\"cat\":");
        escape_into(&event.cat, &mut out);
        out.push_str(",\"ph\":\"X\",\"pid\":");
        out.push_str(&event.pid.to_string());
        out.push_str(",\"tid\":");
        out.push_str(&event.tid.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&format_us(event.ts_ns));
        out.push_str(",\"dur\":");
        out.push_str(&format_us(event.dur_ns));
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Nanoseconds as a sub-microsecond-exact decimal microsecond count —
/// chrome trace timestamps are microseconds.  Pure integer formatting.
pub fn format_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Parses a document produced by [`render`] back into its events.
///
/// Accepts the subset of the trace-event format that [`render`] emits —
/// one object with a `traceEvents` array of flat complete events — while
/// tolerating unknown scalar members and arbitrary whitespace.  Timestamps
/// must not carry more than three fraction digits (sub-nanosecond times
/// cannot be represented).  Never panics.
pub fn parse(input: &str) -> Result<Vec<ChromeEvent>, String> {
    let mut p = Reader {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.require(b'{')?;
    let mut events = None;
    let mut first = true;
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        if !first {
            p.require(b',')?;
            p.skip_ws();
        }
        first = false;
        let key = p.string()?;
        p.skip_ws();
        p.require(b':')?;
        p.skip_ws();
        if key == "traceEvents" {
            if events.is_some() {
                return Err("duplicate traceEvents member".to_string());
            }
            events = Some(p.events()?);
        } else {
            p.skip_scalar()?;
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    events.ok_or_else(|| "document has no traceEvents member".to_string())
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn require(&mut self, byte: u8) -> Result<(), String> {
        if self.eat(byte) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                char::from(byte),
                self.pos,
                self.peek().map(char::from)
            ))
        }
    }

    /// Parses a quoted string with the escapes [`escape_into`] can emit.
    fn string(&mut self) -> Result<String, String> {
        self.require(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some(digit) =
                                    self.peek().and_then(|d| char::from(d).to_digit(16))
                                else {
                                    return Err("bad \\u escape".to_string());
                                };
                                self.pos += 1;
                                code = code * 16 + digit;
                            }
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(format!("\\u{code:04x} is not a scalar")),
                            }
                        }
                        other => {
                            return Err(format!("unknown escape \\{}", char::from(other)));
                        }
                    }
                }
                byte if byte < 0x20 => return Err("raw control byte in string".to_string()),
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // just consumed (input is a &str, so it is valid UTF-8).
                    let start = self.pos - 1;
                    let end = self
                        .bytes
                        .get(start..)
                        .map(|rest| {
                            start
                                + rest
                                    .iter()
                                    .skip(1)
                                    .take_while(|b| **b & 0xC0 == 0x80)
                                    .count()
                                + 1
                        })
                        .unwrap_or(start);
                    if let Some(chunk) = self.bytes.get(start..end) {
                        out.push_str(&String::from_utf8_lossy(chunk));
                    }
                    self.pos = end;
                }
            }
        }
    }

    /// Parses a non-negative decimal number with at most three fraction
    /// digits, returning exact nanoseconds (the literal is microseconds).
    fn number_us_to_ns(&mut self) -> Result<u64, String> {
        let start = self.pos;
        let mut whole: u64 = 0;
        while let Some(digit) = self.peek().filter(u8::is_ascii_digit) {
            whole = whole
                .checked_mul(10)
                .and_then(|w| w.checked_add(u64::from(digit - b'0')))
                .ok_or("number overflows u64")?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        let mut frac: u64 = 0;
        let mut frac_digits = 0u32;
        if self.eat(b'.') {
            while let Some(digit) = self.peek().filter(u8::is_ascii_digit) {
                frac_digits += 1;
                if frac_digits > 3 {
                    return Err("timestamps carry at most 3 fraction digits (1 ns)".to_string());
                }
                frac = frac * 10 + u64::from(digit - b'0');
                self.pos += 1;
            }
            if frac_digits == 0 {
                return Err("digits must follow the decimal point".to_string());
            }
        }
        while frac_digits < 3 {
            frac *= 10;
            frac_digits += 1;
        }
        whole
            .checked_mul(1_000)
            .and_then(|ns| ns.checked_add(frac))
            .ok_or_else(|| "timestamp overflows u64 nanoseconds".to_string())
    }

    /// Skips one scalar member value (string or number).
    fn skip_scalar(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'"') {
            self.string().map(|_| ())
        } else {
            self.number_us_to_ns().map(|_| ())
        }
    }

    fn events(&mut self) -> Result<Vec<ChromeEvent>, String> {
        self.require(b'[')?;
        let mut events = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(events);
        }
        loop {
            self.skip_ws();
            events.push(self.event()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(events);
            }
            self.require(b',')?;
        }
    }

    fn event(&mut self) -> Result<ChromeEvent, String> {
        self.require(b'{')?;
        let mut event = ChromeEvent::default();
        let mut first = true;
        loop {
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(event);
            }
            if !first {
                self.require(b',')?;
                self.skip_ws();
            }
            first = false;
            let key = self.string()?;
            self.skip_ws();
            self.require(b':')?;
            self.skip_ws();
            match key.as_str() {
                "name" => event.name = self.string()?,
                "cat" => event.cat = self.string()?,
                "ph" => {
                    let ph = self.string()?;
                    if ph != "X" {
                        return Err(format!("phase {ph:?} is not a complete event"));
                    }
                }
                "pid" => event.pid = self.integer()?,
                "tid" => event.tid = self.integer()?,
                "ts" => event.ts_ns = self.number_us_to_ns()?,
                "dur" => event.dur_ns = self.number_us_to_ns()?,
                _ => self.skip_scalar()?,
            }
        }
    }

    /// Parses a non-negative integer (pid/tid lanes carry no fraction).
    fn integer(&mut self) -> Result<u64, String> {
        let start = self.pos;
        let mut value: u64 = 0;
        while let Some(digit) = self.peek().filter(u8::is_ascii_digit) {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(digit - b'0')))
                .ok_or("integer overflows u64")?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected an integer at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            return Err("pid/tid must be integers".to_string());
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ChromeEvent> {
        vec![
            ChromeEvent {
                name: "parse".to_string(),
                cat: "pipeline".to_string(),
                pid: 1,
                tid: 0,
                ts_ns: 0,
                dur_ns: 1_500_000,
            },
            ChromeEvent {
                name: "main.2.1".to_string(),
                cat: "reduced".to_string(),
                pid: 3,
                tid: 7,
                ts_ns: 123_456_789,
                dur_ns: 42,
            },
        ]
    }

    #[test]
    fn render_emits_the_legacy_byte_format() {
        let trace = render(&sample_events());
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(trace.ends_with("]}\n"));
        assert!(trace.contains(
            "{\"name\":\"parse\",\"cat\":\"pipeline\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":1500.000}"
        ));
        assert!(trace.contains("\"ts\":123456.789,\"dur\":0.042"), "{trace}");
    }

    #[test]
    fn round_trip_is_lossless() {
        let events = sample_events();
        let rendered = render(&events);
        let back = parse(&rendered).unwrap();
        assert_eq!(back, events);
        assert_eq!(render(&back), rendered, "one canonical serialization");
    }

    #[test]
    fn empty_trace_round_trips() {
        let rendered = render(&[]);
        assert_eq!(
            rendered,
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n"
        );
        assert_eq!(parse(&rendered).unwrap(), Vec::new());
    }

    #[test]
    fn names_are_escaped_and_recovered() {
        let events = vec![ChromeEvent {
            name: "loop \"x\"\\\n\u{1}".to_string(),
            cat: String::new(),
            pid: 0,
            tid: 0,
            ts_ns: 1,
            dur_ns: 1,
        }];
        let rendered = render(&events);
        assert_eq!(parse(&rendered).unwrap(), events);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{}").is_err(), "no traceEvents");
        assert!(parse("{\"traceEvents\":[}").is_err());
        assert!(parse("{\"traceEvents\":[]}garbage").is_err());
        // Sub-nanosecond timestamps cannot be represented.
        assert!(parse("{\"traceEvents\":[{\"name\":\"a\",\"ts\":0.0001,\"dur\":1}]}").is_err());
        // Only complete events are in the writer's language.
        assert!(
            parse("{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"dur\":1}]}").is_err()
        );
        // Negative numbers are not timestamps.
        assert!(parse("{\"traceEvents\":[{\"ts\":-1}]}").is_err());
    }

    #[test]
    fn parser_tolerates_whitespace_and_unknown_members() {
        let doc = "{ \"displayTimeUnit\" : \"ms\" ,\n \"traceEvents\" : [\n  { \"name\" : \"a\" , \"extra\" : 7 , \"ts\" : 2.5 , \"dur\" : 1 }\n ] }";
        let events = parse(doc).unwrap();
        assert_eq!(events.len(), 1);
        let event = events.first().unwrap();
        assert_eq!(event.name, "a");
        assert_eq!(event.ts_ns, 2_500);
        assert_eq!(event.dur_ns, 1_000);
    }
}
