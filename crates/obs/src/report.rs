//! End-of-run reports: text summary, stable JSON schema, chrome tracing.
//!
//! A [`RunReport`] is an owned snapshot of everything a [`crate::Recorder`]
//! merged.  It has three sinks:
//!
//! * [`RunReport::render_text`] — the human summary.  This is the single
//!   source of truth for counter presentation; the benches print through
//!   it instead of hand-rolling stat lines.
//! * [`RunReport::render_json`] — the machine-readable report behind the
//!   CLI's `--obs-out`.  Schema version 1, documented in
//!   `docs/observability.md` and enforced by [`RunReport::from_json`].
//! * [`RunReport::render_chrome_trace`] — the recorded spans as
//!   chrome://tracing / Perfetto "trace event" JSON.
//!
//! All formatting is integer arithmetic: no floats, so reports are
//! byte-stable across platforms.

use std::collections::BTreeMap;

use crate::chrome::{self, ChromeEvent};
use crate::json::{self, JsonValue};
use crate::metrics::{Histogram, MetricSet};
use crate::recorder::{SpanRecord, Stage};

/// Identifies the document type in the JSON report.
pub const SCHEMA_NAME: &str = "trace-obs-run-report";
/// Current schema version; bump on any incompatible change.
pub const SCHEMA_VERSION: u64 = 1;

/// An owned snapshot of one histogram, bucket bounds resolved.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `(inclusive upper bound, count)` per non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    fn from_histogram(h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets: h.nonempty_buckets(),
        }
    }

    /// Mean sample (integer division), 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket holding the `q`-quantile sample, clamped
    /// to the observed maximum; `q` is in thousandths (950 = p95).
    pub fn quantile_upper_bound(&self, q_thousandths: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q_thousandths * self.count)
            .div_ceil(1000)
            .clamp(1, self.count);
        let mut seen = 0u64;
        for &(bound, count) in &self.buckets {
            seen += count;
            if seen >= target {
                return bound.min(self.max);
            }
        }
        self.max
    }
}

/// Everything one run recorded, ready for the sinks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Monotonic event counts, by metric name.
    pub counters: BTreeMap<String, u64>,
    /// High-water marks, by metric name.
    pub gauges: BTreeMap<String, u64>,
    /// Duration/size distributions, by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Individual stage spans, ordered by start time.
    pub spans: Vec<SpanRecord>,
}

impl RunReport {
    /// Builds a report from merged metrics and collected spans.
    pub fn from_parts(metrics: &MetricSet, spans: Vec<SpanRecord>) -> RunReport {
        RunReport {
            counters: metrics
                .counters()
                .map(|(name, value)| (name.to_string(), value))
                .collect(),
            gauges: metrics
                .gauges()
                .map(|(name, value)| (name.to_string(), value))
                .collect(),
            histograms: metrics
                .histograms()
                .map(|(name, h)| (name.to_string(), HistogramSnapshot::from_histogram(h)))
                .collect(),
            spans,
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Renders the human-readable end-of-run summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== run report ==\n");
        if self.is_empty() {
            out.push_str("(nothing recorded)\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<36} {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<36} {value}\n"));
            }
        }
        let stage_rows: Vec<(&'static str, &HistogramSnapshot)> = Stage::ALL
            .iter()
            .filter_map(|stage| {
                self.histograms
                    .get(stage.histogram_name())
                    .map(|h| (stage.name(), h))
            })
            .collect();
        if !stage_rows.is_empty() {
            out.push_str("stage timings:\n");
            out.push_str(&format!(
                "  {:<10} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                "stage", "spans", "total", "mean", "p95", "max"
            ));
            for (name, h) in stage_rows {
                out.push_str(&format!(
                    "  {:<10} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                    name,
                    h.count,
                    format_ns(h.sum),
                    format_ns(h.mean()),
                    format_ns(h.quantile_upper_bound(950)),
                    format_ns(h.max),
                ));
            }
        }
        let other_histograms: Vec<(&String, &HistogramSnapshot)> = self
            .histograms
            .iter()
            .filter(|(name, _)| !name.starts_with("span."))
            .collect();
        if !other_histograms.is_empty() {
            out.push_str("distributions:\n");
            for (name, h) in other_histograms {
                out.push_str(&format!(
                    "  {:<36} count {} min {} mean {} max {}\n",
                    name,
                    h.count,
                    h.min,
                    h.mean(),
                    h.max
                ));
            }
        }
        self.render_matching_rates(&mut out);
        out
    }

    /// The derived matching-efficiency lines both benches used to compute
    /// by hand, now in one place.
    fn render_matching_rates(&self, out: &mut String) {
        let counter = |name: &str| self.counters.get(name).copied().unwrap_or(0);
        let comparisons = counter(crate::names::MATCH_COMPARISONS);
        let eligible = counter(crate::names::MATCH_ELIGIBLE);
        if comparisons == 0 && eligible == 0 {
            return;
        }
        out.push_str("matching:\n");
        out.push_str(&format!(
            "  {} comparisons, {} matches\n",
            comparisons,
            counter(crate::names::MATCH_MATCHES)
        ));
        if comparisons > 0 {
            out.push_str(&format!(
                "  {} prefilter-rejected, {} early-abandoned, {} full kernels\n",
                percent(counter(crate::names::MATCH_PREFILTER_REJECTS), comparisons),
                percent(counter(crate::names::MATCH_EARLY_ABANDONS), comparisons),
                counter(crate::names::MATCH_FULL_KERNELS),
            ));
        }
        let index_prunes = counter(crate::names::MATCH_INDEX_WINDOW_PRUNES)
            + counter(crate::names::MATCH_INDEX_PIVOT_PRUNES);
        if eligible > 0 {
            out.push_str(&format!(
                "  {} of {} eligible candidates index-pruned before any kernel\n",
                percent(index_prunes, eligible),
                eligible,
            ));
        }
    }

    /// The report as a schema-versioned JSON tree.
    pub fn to_json(&self) -> JsonValue {
        let map_obj = |map: &BTreeMap<String, u64>| {
            JsonValue::Obj(
                map.iter()
                    .map(|(name, &value)| (name.clone(), JsonValue::UInt(value)))
                    .collect(),
            )
        };
        let histograms = JsonValue::Obj(
            self.histograms
                .iter()
                .map(|(name, h)| {
                    let buckets = JsonValue::Arr(
                        h.buckets
                            .iter()
                            .map(|&(le, count)| {
                                JsonValue::Obj(vec![
                                    ("le".to_string(), JsonValue::UInt(le)),
                                    ("count".to_string(), JsonValue::UInt(count)),
                                ])
                            })
                            .collect(),
                    );
                    (
                        name.clone(),
                        JsonValue::Obj(vec![
                            ("count".to_string(), JsonValue::UInt(h.count)),
                            ("sum".to_string(), JsonValue::UInt(h.sum)),
                            ("min".to_string(), JsonValue::UInt(h.min)),
                            ("max".to_string(), JsonValue::UInt(h.max)),
                            ("buckets".to_string(), buckets),
                        ]),
                    )
                })
                .collect(),
        );
        let spans = JsonValue::Arr(
            self.spans
                .iter()
                .map(|span| {
                    JsonValue::Obj(vec![
                        (
                            "stage".to_string(),
                            JsonValue::Str(span.stage.name().to_string()),
                        ),
                        ("shard".to_string(), JsonValue::UInt(u64::from(span.shard))),
                        ("start_ns".to_string(), JsonValue::UInt(span.start_ns)),
                        ("dur_ns".to_string(), JsonValue::UInt(span.dur_ns)),
                    ])
                })
                .collect(),
        );
        JsonValue::Obj(vec![
            (
                "schema".to_string(),
                JsonValue::Str(SCHEMA_NAME.to_string()),
            ),
            ("version".to_string(), JsonValue::UInt(SCHEMA_VERSION)),
            ("counters".to_string(), map_obj(&self.counters)),
            ("gauges".to_string(), map_obj(&self.gauges)),
            ("histograms".to_string(), histograms),
            ("spans".to_string(), spans),
        ])
    }

    /// Renders the report as compact schema-versioned JSON.
    pub fn render_json(&self) -> String {
        self.to_json().render()
    }

    /// Parses and validates a JSON report produced by
    /// [`RunReport::render_json`].
    pub fn from_json(input: &str) -> Result<RunReport, String> {
        RunReport::from_value(&json::parse(input)?)
    }

    /// Validates a parsed JSON tree against schema version 1.
    pub fn validate_json(value: &JsonValue) -> Result<(), String> {
        RunReport::from_value(value).map(|_| ())
    }

    fn from_value(value: &JsonValue) -> Result<RunReport, String> {
        match value.get("schema").and_then(JsonValue::as_str) {
            Some(SCHEMA_NAME) => {}
            other => return Err(format!("schema field is {other:?}, want {SCHEMA_NAME:?}")),
        }
        match value.get("version").and_then(JsonValue::as_u64) {
            Some(SCHEMA_VERSION) => {}
            other => return Err(format!("version is {other:?}, want {SCHEMA_VERSION}")),
        }
        let uint_map = |field: &str| -> Result<BTreeMap<String, u64>, String> {
            let entries = value
                .get(field)
                .and_then(JsonValue::as_obj)
                .ok_or_else(|| format!("{field} must be an object"))?;
            entries
                .iter()
                .map(|(name, v)| {
                    v.as_u64()
                        .map(|v| (name.clone(), v))
                        .ok_or_else(|| format!("{field}.{name} must be a non-negative integer"))
                })
                .collect()
        };
        let counters = uint_map("counters")?;
        let gauges = uint_map("gauges")?;

        let uint_field = |obj: &JsonValue, context: &str, field: &str| -> Result<u64, String> {
            obj.get(field)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("{context}.{field} must be a non-negative integer"))
        };
        let mut histograms = BTreeMap::new();
        for (name, h) in value
            .get("histograms")
            .and_then(JsonValue::as_obj)
            .ok_or("histograms must be an object")?
        {
            let mut buckets = Vec::new();
            let mut last_le = None;
            for bucket in h
                .get("buckets")
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| format!("histograms.{name}.buckets must be an array"))?
            {
                let context = format!("histograms.{name}.buckets[]");
                let le = uint_field(bucket, &context, "le")?;
                if last_le.is_some_and(|last| le <= last) {
                    return Err(format!("{context} bounds must be strictly increasing"));
                }
                last_le = Some(le);
                buckets.push((le, uint_field(bucket, &context, "count")?));
            }
            let context = format!("histograms.{name}");
            let snapshot = HistogramSnapshot {
                count: uint_field(h, &context, "count")?,
                sum: uint_field(h, &context, "sum")?,
                min: uint_field(h, &context, "min")?,
                max: uint_field(h, &context, "max")?,
                buckets,
            };
            if snapshot.buckets.iter().map(|&(_, c)| c).sum::<u64>() != snapshot.count {
                return Err(format!("{context}: bucket counts do not sum to count"));
            }
            histograms.insert(name.clone(), snapshot);
        }

        let mut spans = Vec::new();
        for span in value
            .get("spans")
            .and_then(JsonValue::as_arr)
            .ok_or("spans must be an array")?
        {
            let stage_name = span
                .get("stage")
                .and_then(JsonValue::as_str)
                .ok_or("spans[].stage must be a string")?;
            let stage = Stage::by_name(stage_name)
                .ok_or_else(|| format!("spans[].stage {stage_name:?} is not a known stage"))?;
            let shard = uint_field(span, "spans[]", "shard")?;
            let shard =
                u32::try_from(shard).map_err(|_| format!("spans[].shard {shard} exceeds u32"))?;
            spans.push(SpanRecord {
                stage,
                shard,
                start_ns: uint_field(span, "spans[]", "start_ns")?,
                dur_ns: uint_field(span, "spans[]", "dur_ns")?,
            });
        }

        Ok(RunReport {
            counters,
            gauges,
            histograms,
            spans,
        })
    }

    /// Renders the recorded spans as chrome://tracing "trace event" JSON
    /// (also readable by Perfetto): complete (`ph: "X"`) events, one `tid`
    /// per recorder shard, timestamps in microseconds.  Emission goes
    /// through the shared writer in [`crate::chrome`], the same one the
    /// reduced-timeline export uses.
    pub fn render_chrome_trace(&self) -> String {
        let events: Vec<ChromeEvent> = self
            .spans
            .iter()
            .map(|span| ChromeEvent {
                name: span.stage.name().to_string(),
                cat: "pipeline".to_string(),
                pid: 1,
                tid: u64::from(span.shard),
                ts_ns: span.start_ns,
                dur_ns: span.dur_ns,
            })
            .collect();
        chrome::render(&events)
    }
}

/// Pretty-prints a nanosecond duration with integer arithmetic only.
fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{}.{:03}us", ns / 1_000, ns % 1_000)
    } else if ns < 1_000_000_000 {
        let us = ns / 1_000;
        format!("{}.{:03}ms", us / 1_000, us % 1_000)
    } else {
        let ms = ns / 1_000_000;
        format!("{}.{:03}s", ms / 1_000, ms % 1_000)
    }
}

/// `numerator / denominator` as a one-decimal percentage, integer math.
fn percent(numerator: u64, denominator: u64) -> String {
    if denominator == 0 {
        return "0.0%".to_string();
    }
    let tenths = numerator.saturating_mul(1000) / denominator;
    format!("{}.{}%", tenths / 10, tenths % 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::names;
    use crate::recorder::Recorder;
    use std::sync::Arc;

    fn sample_report() -> RunReport {
        let clock = Arc::new(ManualClock::new(0));
        let recorder = Recorder::with_clock(ArcClock(Arc::clone(&clock)));
        let mut shard = recorder.shard();
        shard.add(names::MATCH_COMPARISONS, 1000);
        shard.add(names::MATCH_PREFILTER_REJECTS, 400);
        shard.add(names::MATCH_EARLY_ABANDONS, 100);
        shard.add(names::MATCH_FULL_KERNELS, 500);
        shard.add(names::MATCH_MATCHES, 450);
        shard.add(names::MATCH_ELIGIBLE, 4000);
        shard.add(names::MATCH_INDEX_WINDOW_PRUNES, 2500);
        shard.gauge_max(names::STREAM_PEAK_CHUNK_BYTES, 65_536);
        let span = shard.start();
        clock.advance(1_500_000);
        shard.end(Stage::Rank, span);
        shard.finish();
        recorder.report()
    }

    struct ArcClock(Arc<ManualClock>);

    impl crate::Clock for ArcClock {
        fn now_ns(&self) -> u64 {
            self.0.now_ns()
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample_report();
        let rendered = report.render_json();
        let back = RunReport::from_json(&rendered).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.render_json(), rendered);
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json(
            r#"{"schema":"trace-obs-run-report","version":2,"counters":{},"gauges":{},"histograms":{},"spans":[]}"#
        )
        .is_err());
        assert!(RunReport::from_json(
            r#"{"schema":"trace-obs-run-report","version":1,"counters":{"x":"y"},"gauges":{},"histograms":{},"spans":[]}"#
        )
        .is_err());
        assert!(RunReport::from_json(
            r#"{"schema":"trace-obs-run-report","version":1,"counters":{},"gauges":{},"histograms":{},"spans":[{"stage":"teleport","shard":0,"start_ns":0,"dur_ns":1}]}"#
        )
        .is_err());
        assert!(RunReport::from_json(
            r#"{"schema":"trace-obs-run-report","version":1,"counters":{},"gauges":{},"histograms":{"h":{"count":2,"sum":3,"min":1,"max":2,"buckets":[{"le":1,"count":1}]}},"spans":[]}"#
        )
        .is_err());
    }

    #[test]
    fn text_summary_contains_the_derived_rates() {
        let text = sample_report().render_text();
        assert!(text.contains("match.comparisons"), "{text}");
        assert!(text.contains("40.0% prefilter-rejected"), "{text}");
        assert!(text.contains("10.0% early-abandoned"), "{text}");
        assert!(text.contains("62.5% of 4000 eligible"), "{text}");
        assert!(text.contains("rank"), "{text}");
        assert!(text.contains("1.500ms"), "{text}");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_microsecond_times() {
        let trace = sample_report().render_chrome_trace();
        assert!(trace.contains("\"ts\":0.000"), "{trace}");
        assert!(trace.contains("\"dur\":1500.000"), "{trace}");
        assert!(trace.contains("\"name\":\"rank\""), "{trace}");
    }

    #[test]
    fn empty_report_renders_cleanly() {
        let report = RunReport::default();
        assert!(report.is_empty());
        assert!(report.render_text().contains("(nothing recorded)"));
        let back = RunReport::from_json(&report.render_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn format_helpers_are_integer_exact() {
        assert_eq!(format_ns(999), "999ns");
        assert_eq!(format_ns(1_500), "1.500us");
        assert_eq!(format_ns(2_000_001), "2.000ms");
        assert_eq!(format_ns(3_999_000_000), "3.999s");
        assert_eq!(percent(1, 3), "33.3%");
        assert_eq!(percent(0, 0), "0.0%");
    }
}
