//! Injectable time sources.
//!
//! The workspace determinism lint (`cargo run -p xtask -- lint`) bans
//! `Instant`/`SystemTime` in every crate whose behaviour feeds reduction
//! output, `trace_obs` included.  Timing therefore flows through the
//! [`Clock`] trait: recorders are constructed with a clock, and the only
//! monotonic implementation lives here, behind audited `lint:allow`
//! entries — the single place in the workspace where wall-clock time
//! enters.  Everything downstream of a [`Clock`] is deterministic given the
//! clock's readings, which is what lets tests drive recorders with a
//! [`ManualClock`] and assert exact report contents.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic nanosecond source injected into recorders.
///
/// Implementations must be monotone non-decreasing; the value is an opaque
/// offset from an arbitrary origin, only differences are meaningful.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since the clock's origin.
    fn now_ns(&self) -> u64;
}

/// The real monotonic clock: nanoseconds since the clock was created.
///
/// This is the workspace's one audited wall-clock surface (see
/// `docs/static-analysis.md` and `docs/observability.md`); core crates
/// never read time directly, they record against a [`Clock`].
#[derive(Clone, Debug)]
pub struct MonotonicClock {
    // lint:allow(wall_clock) -- the audited monotonic time source: all timing flows through Clock
    origin: std::time::Instant,
}

impl MonotonicClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            // lint:allow(wall_clock) -- audited origin stamp; now_ns() only ever reports differences
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturates after ~584 years of process uptime.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic, manually advanced clock for tests: every reading
/// returns the value set by the test, so span durations (and therefore
/// whole reports) are exactly reproducible.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Creates a clock reading `start` nanoseconds.
    pub fn new(start: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(start),
        }
    }

    /// Advances the clock by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.now.fetch_add(delta, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute reading.
    pub fn set(&self, now: u64) {
        self.now.store(now, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_exact() {
        let clock = ManualClock::new(10);
        assert_eq!(clock.now_ns(), 10);
        clock.advance(5);
        assert_eq!(clock.now_ns(), 15);
        clock.set(1_000);
        assert_eq!(clock.now_ns(), 1_000);
    }
}
