//! Trace file input/output for the CLI.
//!
//! File formats are chosen by extension: `.txt` and `.trctxt` use the
//! human-readable text format from `trace-format`, everything else uses a
//! binary codec (the monolithic v1 encoding is the format the paper's
//! file-size percentages are measured against).  Binary *reads* autodetect
//! monolithic v1 files and chunked v2 containers by magic; binary *writes*
//! default to chunked v2 containers compressed with `delta-lz`
//! ([`BinaryFormat::default`]) with uncompressed chunks available via
//! `--codec none` and the monolithic v1 path kept reachable via `--v1`.

use std::fs;
use std::path::Path;

use trace_container::{decode_app_any, decode_reduced_any, ChunkSpec};
use trace_format::{parse_app_trace, parse_reduced_trace, write_app_trace, write_reduced_trace};
use trace_model::codec::{encode_app_trace, encode_reduced_trace};
use trace_model::{AppTrace, ReducedAppTrace};

/// Which binary encoding a write produces (text paths ignore this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryFormat {
    /// Chunked, indexed `.trc` v2 container — the default write format —
    /// with the chunk grouping and codec of the spec.
    ContainerV2(ChunkSpec),
    /// Monolithic v1 encoding (`--v1`): one decode-it-all buffer, no
    /// chunks, no index, no compression.
    MonolithicV1,
}

impl Default for BinaryFormat {
    /// Chunked v2 container with `delta-lz` chunk compression — the CLI's
    /// default for every binary write (`--codec none` opts out).
    fn default() -> Self {
        BinaryFormat::ContainerV2(ChunkSpec::with_codec(trace_container::Codec::DeltaLz))
    }
}

/// True if the path should use the text format.
pub fn is_text_path(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("txt") | Some("trctxt")
    )
}

/// Loads a full application trace from `path` (text or binary by extension).
pub fn load_app_trace(path: &Path) -> Result<AppTrace, String> {
    load_app_trace_obs(path, &trace_obs::Recorder::disabled())
}

/// [`load_app_trace`] with observability: the whole read-and-decode is
/// bracketed by one [`trace_obs::Stage::Parse`] span.  With a disabled
/// recorder this is exactly [`load_app_trace`].
pub fn load_app_trace_obs(path: &Path, recorder: &trace_obs::Recorder) -> Result<AppTrace, String> {
    let mut obs = recorder.shard();
    let span = obs.start();
    let result = if is_text_path(path) {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse_app_trace(&text).map_err(|e| format!("{}: {e}", path.display()))
    } else {
        let bytes = fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        decode_app_any(&bytes).map_err(|e| format!("{}: {e}", path.display()))
    };
    obs.end(trace_obs::Stage::Parse, span);
    obs.finish();
    result
}

/// Stores a full application trace to `path`: text by extension, otherwise
/// the requested binary format.  Returns the number of bytes written.
pub fn store_app_trace(path: &Path, app: &AppTrace, format: BinaryFormat) -> Result<usize, String> {
    store_app_trace_obs(path, app, format, &trace_obs::Recorder::disabled())
}

/// [`store_app_trace`] with observability: the encode-and-write is
/// bracketed by one [`trace_obs::Stage::Store`] span, and container writes
/// additionally record per-chunk compression spans and codec byte
/// counters.  The bytes written are identical.
pub fn store_app_trace_obs(
    path: &Path,
    app: &AppTrace,
    format: BinaryFormat,
    recorder: &trace_obs::Recorder,
) -> Result<usize, String> {
    let mut obs = recorder.shard();
    let span = obs.start();
    let bytes = if is_text_path(path) {
        write_app_trace(app).into_bytes()
    } else {
        match format {
            BinaryFormat::ContainerV2(spec) => {
                trace_container::encode_app_container_obs(app, spec, recorder.shard())
            }
            BinaryFormat::MonolithicV1 => encode_app_trace(app),
        }
    };
    fs::write(path, &bytes).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    obs.end(trace_obs::Stage::Store, span);
    obs.finish();
    Ok(bytes.len())
}

/// Loads a reduced trace from `path` (text or binary by extension).
pub fn load_reduced_trace(path: &Path) -> Result<ReducedAppTrace, String> {
    if is_text_path(path) {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse_reduced_trace(&text).map_err(|e| format!("{}: {e}", path.display()))
    } else {
        let bytes = fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        decode_reduced_any(&bytes).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Stores a reduced trace to `path`: text by extension, otherwise the
/// requested binary format.  Returns the number of bytes written.
pub fn store_reduced_trace(
    path: &Path,
    reduced: &ReducedAppTrace,
    format: BinaryFormat,
) -> Result<usize, String> {
    store_reduced_trace_obs(path, reduced, format, &trace_obs::Recorder::disabled())
}

/// [`store_reduced_trace`] with observability (see
/// [`store_app_trace_obs`]).
pub fn store_reduced_trace_obs(
    path: &Path,
    reduced: &ReducedAppTrace,
    format: BinaryFormat,
    recorder: &trace_obs::Recorder,
) -> Result<usize, String> {
    let mut obs = recorder.shard();
    let span = obs.start();
    let bytes = if is_text_path(path) {
        write_reduced_trace(reduced).into_bytes()
    } else {
        match format {
            BinaryFormat::ContainerV2(spec) => {
                trace_container::encode_reduced_container_obs(reduced, spec, recorder.shard())
            }
            BinaryFormat::MonolithicV1 => encode_reduced_trace(reduced),
        }
    };
    fs::write(path, &bytes).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    obs.end(trace_obs::Stage::Store, span);
    obs.finish();
    Ok(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use trace_reduce::{Method, Reducer};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    /// A unique temporary file path for a test (removed by the caller).
    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("trace_tools_io_{}_{name}", std::process::id()));
        path
    }

    #[test]
    fn extension_detection() {
        assert!(is_text_path(Path::new("a.txt")));
        assert!(is_text_path(Path::new("dir/b.trctxt")));
        assert!(!is_text_path(Path::new("a.trc")));
        assert!(!is_text_path(Path::new("noext")));
    }

    #[test]
    fn app_trace_round_trips_through_every_format() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        for (name, format) in [
            ("app_roundtrip_v2.bin", BinaryFormat::default()),
            ("app_roundtrip_v1.bin", BinaryFormat::MonolithicV1),
            (
                "app_roundtrip_dlz.bin",
                BinaryFormat::ContainerV2(ChunkSpec::with_codec(trace_container::Codec::DeltaLz)),
            ),
            ("app_roundtrip.txt", BinaryFormat::default()),
        ] {
            let path = temp_path(name);
            let written = store_app_trace(&path, &app, format).unwrap();
            assert_eq!(written, std::fs::metadata(&path).unwrap().len() as usize);
            let loaded = load_app_trace(&path).unwrap();
            assert_eq!(loaded, app, "{name}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn binary_writes_default_to_v2_containers() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let path = temp_path("default_is_v2.bin");
        store_app_trace(&path, &app, BinaryFormat::default()).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[..4], b"TRC2");
        store_app_trace(&path, &app, BinaryFormat::MonolithicV1).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[..4], b"TRCF");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reduced_trace_round_trips_through_every_format() {
        let app = Workload::new(WorkloadKind::EarlyGather, SizePreset::Tiny).generate();
        let reduced = Reducer::with_default_threshold(Method::AvgWave).reduce_app(&app);
        for (name, format) in [
            ("reduced_roundtrip_v2.bin", BinaryFormat::default()),
            ("reduced_roundtrip_v1.bin", BinaryFormat::MonolithicV1),
            (
                "reduced_roundtrip_dlz.bin",
                BinaryFormat::ContainerV2(ChunkSpec::with_codec(trace_container::Codec::DeltaLz)),
            ),
            ("reduced_roundtrip.txt", BinaryFormat::default()),
        ] {
            let path = temp_path(name);
            store_reduced_trace(&path, &reduced, format).unwrap();
            let loaded = load_reduced_trace(&path).unwrap();
            assert_eq!(loaded, reduced, "{name}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn missing_files_and_garbage_content_report_errors() {
        let missing = Path::new("/nonexistent/definitely/missing.trc");
        assert!(load_app_trace(missing).is_err());
        assert!(load_reduced_trace(missing).is_err());

        let path = temp_path("garbage.txt");
        std::fs::write(&path, "this is not a trace").unwrap();
        let err = load_app_trace(&path).unwrap_err();
        assert!(err.contains("trace format error"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
