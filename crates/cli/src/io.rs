//! Trace file input/output for the CLI.
//!
//! File formats are chosen by extension: `.txt` and `.trctxt` use the
//! human-readable text format from `trace-format`, everything else uses a
//! binary codec (the format the paper's file-size percentages are measured
//! against).  Binary *reads* autodetect monolithic v1 files and chunked v2
//! containers by magic; binary *writes* default to v1 and produce v2 only
//! where a command asks for it (`convert --container`).

use std::fs;
use std::path::Path;

use trace_container::{decode_app_any, decode_reduced_any, encode_app_container, ChunkSpec};
use trace_format::{parse_app_trace, parse_reduced_trace, write_app_trace, write_reduced_trace};
use trace_model::codec::{encode_app_trace, encode_reduced_trace};
use trace_model::{AppTrace, ReducedAppTrace};

/// True if the path should use the text format.
pub fn is_text_path(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("txt") | Some("trctxt")
    )
}

/// Loads a full application trace from `path` (text or binary by extension).
pub fn load_app_trace(path: &Path) -> Result<AppTrace, String> {
    if is_text_path(path) {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse_app_trace(&text).map_err(|e| format!("{}: {e}", path.display()))
    } else {
        let bytes = fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        decode_app_any(&bytes).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Stores a full application trace to `path` (text or binary v1 by
/// extension).
pub fn store_app_trace(path: &Path, app: &AppTrace) -> Result<(), String> {
    let bytes = if is_text_path(path) {
        write_app_trace(app).into_bytes()
    } else {
        encode_app_trace(app)
    };
    fs::write(path, bytes).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Stores a full application trace to `path` as a chunked v2 container
/// (the extension is not consulted; callers gate this on `--container`).
pub fn store_app_container(path: &Path, app: &AppTrace, spec: ChunkSpec) -> Result<(), String> {
    fs::write(path, encode_app_container(app, spec))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Loads a reduced trace from `path` (text or binary by extension).
pub fn load_reduced_trace(path: &Path) -> Result<ReducedAppTrace, String> {
    if is_text_path(path) {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse_reduced_trace(&text).map_err(|e| format!("{}: {e}", path.display()))
    } else {
        let bytes = fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        decode_reduced_any(&bytes).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Stores a reduced trace to `path` (text or binary by extension).
pub fn store_reduced_trace(path: &Path, reduced: &ReducedAppTrace) -> Result<(), String> {
    let bytes = if is_text_path(path) {
        write_reduced_trace(reduced).into_bytes()
    } else {
        encode_reduced_trace(reduced)
    };
    fs::write(path, bytes).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use trace_reduce::{Method, Reducer};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    /// A unique temporary file path for a test (removed by the caller).
    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("trace_tools_io_{}_{name}", std::process::id()));
        path
    }

    #[test]
    fn extension_detection() {
        assert!(is_text_path(Path::new("a.txt")));
        assert!(is_text_path(Path::new("dir/b.trctxt")));
        assert!(!is_text_path(Path::new("a.trc")));
        assert!(!is_text_path(Path::new("noext")));
    }

    #[test]
    fn app_trace_round_trips_through_both_formats() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        for name in ["app_roundtrip.bin", "app_roundtrip.txt"] {
            let path = temp_path(name);
            store_app_trace(&path, &app).unwrap();
            let loaded = load_app_trace(&path).unwrap();
            assert_eq!(loaded, app, "{name}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn reduced_trace_round_trips_through_both_formats() {
        let app = Workload::new(WorkloadKind::EarlyGather, SizePreset::Tiny).generate();
        let reduced = Reducer::with_default_threshold(Method::AvgWave).reduce_app(&app);
        for name in ["reduced_roundtrip.bin", "reduced_roundtrip.txt"] {
            let path = temp_path(name);
            store_reduced_trace(&path, &reduced).unwrap();
            let loaded = load_reduced_trace(&path).unwrap();
            assert_eq!(loaded, reduced, "{name}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn missing_files_and_garbage_content_report_errors() {
        let missing = Path::new("/nonexistent/definitely/missing.trc");
        assert!(load_app_trace(missing).is_err());
        assert!(load_reduced_trace(missing).is_err());

        let path = temp_path("garbage.txt");
        std::fs::write(&path, "this is not a trace").unwrap();
        let err = load_app_trace(&path).unwrap_err();
        assert!(err.contains("trace format error"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
