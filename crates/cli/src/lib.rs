#![forbid(unsafe_code)]
//! Library backing the `trace-tools` command-line binary.
//!
//! Every subcommand is implemented as a pure function over parsed options
//! that returns the text it would print, so the whole tool is unit-testable
//! without spawning processes:
//!
//! * [`cli`] — the tiny argument parser (`subcommand --flag value …`).
//! * [`io`] — load/store helpers that pick the binary codec or the text
//!   format from the file extension.
//! * [`commands`] — the subcommand implementations: `list`, `generate`,
//!   `reduce`, `sample`, `reconstruct`, `convert`, `analyze`, `evaluate`.

#![warn(missing_docs)]

pub mod cli;
pub mod commands;
pub mod io;

pub use cli::{parse_args, Invocation};
pub use commands::run;
