//! Subcommand implementations for `trace-tools`.

use std::path::Path;

use trace_analysis::diagnose;
use trace_eval::{evaluate_method, file_size_percent};
use trace_reduce::{ExtendedConfig, ExtendedMethod, ExtendedReducer, MethodConfig};
use trace_sampling::{sample_app, AdaptiveConfig, SamplingPolicy};
use trace_sim::{SizePreset, Workload, WorkloadKind};

use trace_container::{ChunkSpec, Codec};

use crate::cli::{check_flags, Invocation};
use crate::io::{
    load_app_trace, load_app_trace_obs, load_reduced_trace, store_app_trace, store_reduced_trace,
    store_reduced_trace_obs, BinaryFormat,
};

/// The usage text printed by `trace-tools help` and after errors.
pub fn usage() -> String {
    "\
trace-tools <subcommand> [--flag value]...

subcommands:
  list                                   list workloads, methods and sampling policies
  generate   --workload W --out FILE     generate a benchmark/application trace
             [--preset tiny|small|paper] [binary output flags]
  reduce     --in FILE --out FILE        similarity-based reduction
             --method M [--threshold T]  [binary output flags]
             [--stream [--shards N]]     online bounded-memory reduction; input
                                         format (text, binary v1, container v2)
                                         is autodetected by magic bytes, and
                                         v2 containers shard by index footer
             [--report FILE]             also write a self-contained HTML
                                         analysis report of the reduction
  sample     --in FILE --out FILE        sampling-based reduction
             --policy every:N|random:F|adaptive:E [--seed S]
  reconstruct --in REDUCED --out FILE    rebuild an approximate full trace
  convert    --in FILE --out FILE        convert between binary (.trc) and text (.txt)
             [binary output flags]
  analyze    --in FILE                   KOJAK-style wait-state diagnosis
  report     --in REDUCED                analysis report of a reduced trace:
             [--full FILE]               per-rank divergence, region trie,
             [--run-report FILE]         match quality; --full adds compression
             [--method M [--threshold T]] numbers, --run-report embeds pipeline
             [--divergence-threshold S]  metrics from an --obs-out JSON report
             [--html FILE]               write a self-contained HTML report
             [--chrome FILE]             write the reduced timeline as a
                                         chrome://tracing JSON file
  evaluate   --workload W --method M     run the paper's four criteria
             [--threshold T] [--preset P]
  cluster    --in FILE --k N             inter-process clustering of the ranks
             [--algorithm kmeans|single|complete|average] [--out FILE]
  extension-study --workload W           compare similarity, sampling and
             [--preset P]                clustering on one workload

binary output flags (generate, reduce, convert):
  --codec none|delta|lz|delta-lz         per-chunk compression codec (default delta-lz)
  --chunk-segments N                     segments per chunk (default 128)
  --v1                                   write the monolithic v1 encoding instead
                                         of the default chunked .trc v2 container

observability flags (generate, reduce, convert):
  --obs                                  record pipeline metrics and stage spans
  --obs-out FILE                         write the run report to FILE instead of
                                         appending it to the command output
  --obs-format text|json|chrome          report format (default: json with
                                         --obs-out, text otherwise); `chrome`
                                         is a chrome://tracing event stream

file formats are chosen by extension: .txt/.trctxt = text, anything else = binary
(binary reads autodetect monolithic v1 and chunked v2 containers by magic)"
        .to_string()
}

fn parse_preset(raw: Option<&str>) -> Result<SizePreset, String> {
    match raw.unwrap_or("small") {
        "tiny" => Ok(SizePreset::Tiny),
        "small" => Ok(SizePreset::Small),
        "paper" => Ok(SizePreset::Paper),
        other => Err(format!(
            "unknown preset {other:?} (expected tiny, small or paper)"
        )),
    }
}

fn parse_workload(name: &str) -> Result<WorkloadKind, String> {
    WorkloadKind::by_name(name).ok_or_else(|| {
        let known: Vec<String> = WorkloadKind::all_paper().iter().map(|k| k.name()).collect();
        format!(
            "unknown workload {name:?}; known workloads: {}",
            known.join(", ")
        )
    })
}

fn parse_method(invocation: &Invocation) -> Result<ExtendedConfig, String> {
    let name = invocation.require("method")?;
    let method = ExtendedMethod::by_name(name).ok_or_else(|| {
        let known: Vec<&str> = ExtendedMethod::all().iter().map(|m| m.name()).collect();
        format!(
            "unknown method {name:?}; known methods: {}",
            known.join(", ")
        )
    })?;
    let threshold = invocation
        .get_f64("threshold")?
        .unwrap_or_else(|| method.default_threshold());
    Ok(ExtendedConfig::new(method, threshold))
}

fn parse_policy(invocation: &Invocation) -> Result<SamplingPolicy, String> {
    let raw = invocation.require("policy")?;
    let seed = invocation.get_usize("seed")?.unwrap_or(0x5eed) as u64;
    let (kind, value) = raw.split_once(':').ok_or_else(|| {
        format!("policy {raw:?} must look like every:10, random:0.25 or adaptive:0.05")
    })?;
    match kind {
        "every" => value
            .parse::<usize>()
            .map(SamplingPolicy::EveryNth)
            .map_err(|_| format!("every:{value:?} expects an integer")),
        "random" => value
            .parse::<f64>()
            .map(|fraction| SamplingPolicy::Random { fraction, seed })
            .map_err(|_| format!("random:{value:?} expects a fraction")),
        "adaptive" => value
            .parse::<f64>()
            .map(|err| SamplingPolicy::Adaptive(AdaptiveConfig::with_relative_error(err)))
            .map_err(|_| format!("adaptive:{value:?} expects a relative error")),
        other => Err(format!("unknown sampling policy kind {other:?}")),
    }
}

/// Parses the binary output flags (`--codec`, `--chunk-segments`, `--v1`)
/// shared by `generate`, `reduce` and `convert`.  The default is a chunked
/// `.trc` v2 container with the default grouping compressed with
/// `delta-lz` (2.3–2.7× smaller on the paper workloads, EXPERIMENTS.md
/// Table 5; pass `--codec none` for uncompressed chunks); `--v1` selects
/// the monolithic encoding and conflicts with the container-only flags.
fn parse_binary_format(invocation: &Invocation, out: &Path) -> Result<BinaryFormat, String> {
    // A text output takes none of the binary flags — rejected rather than
    // silently ignored, for every command that writes traces.
    if crate::io::is_text_path(out) {
        for flag in ["container", "codec", "chunk-segments", "v1"] {
            if invocation.has(flag) {
                return Err(format!(
                    "--{flag} configures binary output; {} has a text extension",
                    out.display()
                ));
            }
        }
    }
    if invocation.has("v1") {
        for flag in ["codec", "chunk-segments", "container"] {
            if invocation.has(flag) {
                return Err(format!(
                    "--{flag} configures the chunked v2 container; drop --v1 to use it"
                ));
            }
        }
        return Ok(BinaryFormat::MonolithicV1);
    }
    let mut spec = match invocation.get_usize("chunk-segments")? {
        Some(0) => return Err("--chunk-segments must be at least 1".to_string()),
        Some(n) => ChunkSpec::with_segments(n),
        None => ChunkSpec::default(),
    };
    spec = match invocation.get("codec") {
        Some(name) => {
            let codec = Codec::by_name(name).ok_or_else(|| {
                let known: Vec<&str> = Codec::ALL.iter().map(|c| c.name()).collect();
                format!("unknown codec {name:?}; known codecs: {}", known.join(", "))
            })?;
            spec.codec(codec)
        }
        None => spec.codec(Codec::DeltaLz),
    };
    Ok(BinaryFormat::ContainerV2(spec))
}

/// Output format for the observability run report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ObsFormat {
    /// Human-readable summary ([`trace_obs::RunReport::render_text`]).
    Text,
    /// Machine-readable report with a documented stable schema
    /// ([`trace_obs::RunReport::render_json`]).
    Json,
    /// chrome://tracing event stream
    /// ([`trace_obs::RunReport::render_chrome_trace`]).
    Chrome,
}

impl ObsFormat {
    fn label(self) -> &'static str {
        match self {
            ObsFormat::Text => "text",
            ObsFormat::Json => "json",
            ObsFormat::Chrome => "chrome",
        }
    }
}

/// Parsed observability flags (`--obs`, `--obs-out`, `--obs-format`).
struct ObsSettings {
    /// Report destination; `None` appends to the command output.
    out: Option<std::path::PathBuf>,
    format: ObsFormat,
}

/// Parses the observability flags shared by `generate`, `reduce` and
/// `convert`.  Giving any of the three enables recording; the format
/// defaults to `json` when a `--obs-out` file is given (the
/// machine-readable case) and `text` otherwise.
fn parse_obs(invocation: &Invocation) -> Result<Option<ObsSettings>, String> {
    let enabled =
        invocation.has("obs") || invocation.has("obs-out") || invocation.has("obs-format");
    if !enabled {
        return Ok(None);
    }
    let out = if invocation.has("obs-out") {
        Some(std::path::PathBuf::from(invocation.require("obs-out")?))
    } else {
        None
    };
    let format = match invocation.get("obs-format") {
        None | Some("") => {
            if out.is_some() {
                ObsFormat::Json
            } else {
                ObsFormat::Text
            }
        }
        Some("text") => ObsFormat::Text,
        Some("json") => ObsFormat::Json,
        Some("chrome") => ObsFormat::Chrome,
        Some(other) => {
            return Err(format!(
                "unknown obs format {other:?} (expected text, json or chrome)"
            ))
        }
    };
    Ok(Some(ObsSettings { out, format }))
}

/// Creates the recorder for a command: enabled when obs flags were given.
fn obs_recorder(settings: &Option<ObsSettings>) -> trace_obs::Recorder {
    if settings.is_some() {
        trace_obs::Recorder::enabled()
    } else {
        trace_obs::Recorder::disabled()
    }
}

/// Renders the run report and either writes it to `--obs-out` or appends
/// it to the command output.
fn emit_obs(
    settings: &Option<ObsSettings>,
    recorder: &trace_obs::Recorder,
    message: &mut String,
) -> Result<(), String> {
    let Some(settings) = settings else {
        return Ok(());
    };
    let report = recorder.report();
    let rendered = match settings.format {
        ObsFormat::Text => report.render_text(),
        ObsFormat::Json => report.render_json(),
        ObsFormat::Chrome => report.render_chrome_trace(),
    };
    match &settings.out {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            message.push_str(&format!(
                "\nrun report ({}) -> {}",
                settings.format.label(),
                path.display()
            ));
        }
        None => {
            message.push('\n');
            message.push_str(&rendered);
        }
    }
    Ok(())
}

/// Short human-readable description of a binary write format.
fn format_label(format: BinaryFormat) -> String {
    match format {
        BinaryFormat::MonolithicV1 => "binary v1 (monolithic)".to_string(),
        BinaryFormat::ContainerV2(spec) => format!(
            "container v2, codec {}, {} segments/chunk",
            spec.codec.name(),
            spec.segments_per_chunk
        ),
    }
}

fn cmd_list() -> String {
    let workloads: Vec<String> = WorkloadKind::all_paper().iter().map(|k| k.name()).collect();
    let methods: Vec<&str> = ExtendedMethod::all().iter().map(|m| m.name()).collect();
    format!(
        "workloads ({}):\n  {}\n\nsimilarity methods ({}):\n  {}\n\nsampling policies:\n  every:<n>  random:<fraction>  adaptive:<relative error>",
        workloads.len(),
        workloads.join("\n  "),
        methods.len(),
        methods.join("\n  ")
    )
}

fn cmd_generate(invocation: &Invocation) -> Result<String, String> {
    let kind = parse_workload(invocation.require("workload")?)?;
    let preset = parse_preset(invocation.get("preset"))?;
    let out = Path::new(invocation.require("out")?);
    let format = parse_binary_format(invocation, out)?;
    let obs = parse_obs(invocation)?;
    let recorder = obs_recorder(&obs);
    let app = Workload::new(kind, preset).generate();
    let written = crate::io::store_app_trace_obs(out, &app, format, &recorder)?;
    let encoding = if crate::io::is_text_path(out) {
        "text".to_string()
    } else {
        format_label(format)
    };
    let mut message = format!(
        "generated {}: {} ranks, {} events, {written} bytes ({encoding}) -> {}",
        app.name,
        app.rank_count(),
        app.total_events(),
        out.display()
    );
    emit_obs(&obs, &recorder, &mut message)?;
    Ok(message)
}

/// `reduce --stream`: one-pass, bounded-memory reduction of a trace file.
/// Text, monolithic binary v1 and chunked container v2 inputs are
/// autodetected by magic bytes; v1 has no streamable structure and falls
/// back to in-memory decoding.
fn cmd_reduce_stream(invocation: &Invocation) -> Result<String, String> {
    let config = parse_method(invocation)?;
    let ExtendedMethod::Paper(method) = config.method else {
        return Err(format!(
            "--stream supports the nine paper methods; {} needs the in-memory path \
             (drop --stream)",
            config.label()
        ));
    };
    let input = Path::new(invocation.require("in")?);
    let out = Path::new(invocation.require("out")?);
    let format = parse_binary_format(invocation, out)?;
    let shards = invocation.get_usize("shards")?.unwrap_or(1);
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }

    let obs = parse_obs(invocation)?;
    let recorder = obs_recorder(&obs);
    let method_config = MethodConfig::new(method, config.threshold);
    let (result, kind) = trace_stream::reduce_any_file_obs(method_config, input, shards, &recorder)
        .map_err(|e| format!("{}: {e}", input.display()))?;
    store_reduced_trace_obs(out, &result.reduced, format, &recorder)?;
    // The v1 fallback decodes the whole file single-threaded: no sharding
    // happened and the "peak" is simply every segment, so the message must
    // not claim otherwise.
    let v1_fallback = kind == trace_stream::TraceInputKind::BinaryV1;
    let pipeline = if v1_fallback {
        "in memory (--shards not applicable)".to_string()
    } else {
        format!("over {shards} shard(s)")
    };
    // With several shards the stat is the sum of per-worker peaks — an
    // upper bound on the concurrent total, not a single observation.
    let peak = if !v1_fallback && shards > 1 {
        format!(
            "resident segments <= {}",
            result.stats.peak_resident_segments
        )
    } else {
        format!(
            "peak resident segments {}",
            result.stats.peak_resident_segments
        )
    };
    let mut message = format!(
        "stream-reduced {} ({} input) with {} {pipeline}: {} stored segments for \
         {} executions, degree of matching {:.3}, {peak} (of {} streamed) -> {}",
        result.reduced.name,
        kind.label(),
        config.label(),
        result.stats.stored,
        result.stats.execs,
        result.reduced.degree_of_matching(),
        result.stats.segments,
        out.display()
    );
    if kind == trace_stream::TraceInputKind::ContainerV2 {
        message.push_str(&format!(
            ", peak chunk {} bytes",
            result.stats.peak_chunk_bytes
        ));
    }
    if kind == trace_stream::TraceInputKind::BinaryV1 {
        message.push_str(
            "\nnote: monolithic v1 input was decoded in memory; convert with \
             `--container` for true streaming",
        );
    }
    if invocation.has("report") {
        let run = obs.as_ref().map(|_| recorder.report());
        write_reduce_report(
            invocation.require("report")?,
            &result.reduced,
            None,
            Some(method_config),
            run,
            &mut message,
        )?;
    }
    emit_obs(&obs, &recorder, &mut message)?;
    Ok(message)
}

fn cmd_reduce(invocation: &Invocation) -> Result<String, String> {
    if invocation.has("stream") {
        return cmd_reduce_stream(invocation);
    }
    if invocation.has("shards") {
        return Err("--shards only applies to streaming reduction; add --stream".to_string());
    }
    let config = parse_method(invocation)?;
    let input = Path::new(invocation.require("in")?);
    let out = Path::new(invocation.require("out")?);
    let format = parse_binary_format(invocation, out)?;
    let obs = parse_obs(invocation)?;
    let recorder = obs_recorder(&obs);
    let app = load_app_trace_obs(input, &recorder)?;
    // Paper methods reduce through the instrumented core path (identical
    // output — `ExtendedReducer` delegates Paper methods to `Reducer`);
    // extension methods record one coarse Match span around the reduction.
    let reduced = match config.method {
        ExtendedMethod::Paper(method) => {
            let (reduced, _stats) =
                trace_reduce::Reducer::new(MethodConfig::new(method, config.threshold))
                    .reduce_app_obs(&app, &recorder);
            reduced
        }
        _ => {
            let mut shard = recorder.shard();
            let span = shard.start();
            let reduced = ExtendedReducer::new(config).reduce_app(&app);
            shard.end(trace_obs::Stage::Match, span);
            shard.finish();
            reduced
        }
    };
    store_reduced_trace_obs(out, &reduced, format, &recorder)?;
    let mut message = format!(
        "reduced {} with {}: {} stored segments for {} executions, {:.2}% of the full size, degree of matching {:.3} -> {}",
        app.name,
        config.label(),
        reduced.total_stored(),
        reduced.total_execs(),
        file_size_percent(&app, &reduced),
        reduced.degree_of_matching(),
        out.display()
    );
    if invocation.has("report") {
        let method = match config.method {
            ExtendedMethod::Paper(method) => Some(MethodConfig::new(method, config.threshold)),
            _ => None,
        };
        let run = obs.as_ref().map(|_| recorder.report());
        write_reduce_report(
            invocation.require("report")?,
            &reduced,
            Some(&app),
            method,
            run,
            &mut message,
        )?;
    }
    emit_obs(&obs, &recorder, &mut message)?;
    Ok(message)
}

fn cmd_sample(invocation: &Invocation) -> Result<String, String> {
    let policy = parse_policy(invocation)?;
    let input = Path::new(invocation.require("in")?);
    let out = Path::new(invocation.require("out")?);
    let app = load_app_trace(input)?;
    let reduced = sample_app(&app, policy);
    store_reduced_trace(out, &reduced, BinaryFormat::default())?;
    Ok(format!(
        "sampled {} with {}: {} stored segments for {} executions, {:.2}% of the full size -> {}",
        app.name,
        policy.label(),
        reduced.total_stored(),
        reduced.total_execs(),
        file_size_percent(&app, &reduced),
        out.display()
    ))
}

fn cmd_reconstruct(invocation: &Invocation) -> Result<String, String> {
    let input = Path::new(invocation.require("in")?);
    let out = Path::new(invocation.require("out")?);
    let reduced = load_reduced_trace(input)?;
    let approx = reduced.reconstruct();
    store_app_trace(out, &approx, BinaryFormat::default())?;
    Ok(format!(
        "reconstructed {}: {} ranks, {} events -> {}",
        approx.name,
        approx.rank_count(),
        approx.total_events(),
        out.display()
    ))
}

fn cmd_convert(invocation: &Invocation) -> Result<String, String> {
    let input = Path::new(invocation.require("in")?);
    let out = Path::new(invocation.require("out")?);
    // `--container` is accepted for compatibility: the chunked container is
    // the default binary write format now, so the flag only forbids `--v1`
    // and text outputs (both checked inside parse_binary_format).
    let format = parse_binary_format(invocation, out)?;
    let obs = parse_obs(invocation)?;
    let recorder = obs_recorder(&obs);
    let app = load_app_trace_obs(input, &recorder)?;
    let written = crate::io::store_app_trace_obs(out, &app, format, &recorder)?;
    let encoding = if crate::io::is_text_path(out) {
        "text".to_string()
    } else {
        format_label(format)
    };
    let mut message = format!(
        "converted {} -> {} ({encoding}, {written} bytes)",
        input.display(),
        out.display()
    );
    emit_obs(&obs, &recorder, &mut message)?;
    Ok(message)
}

fn cmd_analyze(invocation: &Invocation) -> Result<String, String> {
    let input = Path::new(invocation.require("in")?);
    let app = load_app_trace(input)?;
    let diagnosis = diagnose(&app);
    Ok(format!(
        "diagnosis of {} ({} ranks, {} events):\n{}",
        app.name,
        app.rank_count(),
        app.total_events(),
        diagnosis.render_chart()
    ))
}

/// Parses the report tunables shared by `report` and `reduce --report`.
fn report_options(invocation: &Invocation) -> Result<trace_report::ReportOptions, String> {
    let mut options = trace_report::ReportOptions::default();
    if let Some(name) = invocation.get("method") {
        let method = trace_reduce::Method::by_name(name).ok_or_else(|| {
            let known: Vec<&str> = trace_reduce::Method::ALL
                .into_iter()
                .map(|m| m.name())
                .collect();
            format!(
                "unknown method {name:?}; paper methods: {}",
                known.join(", ")
            )
        })?;
        options.method = MethodConfig::with_default_threshold(method);
    }
    if let Some(threshold) = invocation.get_f64("threshold")? {
        options.method.threshold = threshold;
    }
    if let Some(threshold) = invocation.get_f64("divergence-threshold")? {
        if threshold.is_nan() || threshold <= 0.0 {
            return Err("--divergence-threshold must be positive".to_string());
        }
        options.divergence_threshold = threshold;
    }
    Ok(options)
}

/// `report`: analysis report over an already-reduced trace.
fn cmd_report(invocation: &Invocation) -> Result<String, String> {
    let input = Path::new(invocation.require("in")?);
    let reduced = load_reduced_trace(input)?;
    let original = if invocation.has("full") {
        Some(load_app_trace(Path::new(invocation.require("full")?))?)
    } else {
        None
    };
    let run = if invocation.has("run-report") {
        let path = invocation.require("run-report")?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Some(trace_obs::RunReport::from_json(&text).map_err(|e| format!("{path}: {e}"))?)
    } else {
        None
    };
    let options = report_options(invocation)?;
    let model = trace_report::build_model(&reduced, original.as_ref(), run.as_ref(), &options);
    let mut message = trace_report::render_text(&model);
    if invocation.has("html") {
        let path = invocation.require("html")?;
        std::fs::write(path, trace_report::render_html(&model))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        message.push_str(&format!("\nhtml report -> {path}"));
    }
    if invocation.has("chrome") {
        let path = invocation.require("chrome")?;
        std::fs::write(path, trace_report::render_chrome_trace(&reduced))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        message.push_str(&format!("\nchrome trace -> {path}"));
    }
    Ok(message)
}

/// `reduce --report FILE`: writes the self-contained HTML analysis report
/// for a reduction that just ran, reusing its method for the divergence
/// kernels and its recorder (when `--obs` was given) for pipeline metrics.
fn write_reduce_report(
    path: &str,
    reduced: &trace_model::ReducedAppTrace,
    original: Option<&trace_model::AppTrace>,
    method: Option<MethodConfig>,
    run: Option<trace_obs::RunReport>,
    message: &mut String,
) -> Result<(), String> {
    let mut options = trace_report::ReportOptions::default();
    if let Some(method) = method {
        options.method = method;
    }
    let model = trace_report::build_model(reduced, original, run.as_ref(), &options);
    std::fs::write(path, trace_report::render_html(&model))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    message.push_str(&format!("\nanalysis report -> {path}"));
    Ok(())
}

fn cmd_evaluate(invocation: &Invocation) -> Result<String, String> {
    let kind = parse_workload(invocation.require("workload")?)?;
    let preset = parse_preset(invocation.get("preset"))?;
    let config = parse_method(invocation)?;
    let app = Workload::new(kind, preset).generate();
    // Paper methods go through the reference evaluation pipeline so every
    // criterion (including degree of matching) is reported; extension
    // methods report the criteria that apply to them.
    let text = match config.method {
        ExtendedMethod::Paper(method) => {
            let eval = evaluate_method(&app, MethodConfig::new(method, config.threshold));
            format!(
                "workload {}  method {}\n  file size: {:.2}% of full\n  degree of matching: {:.3}\n  approximation distance: {:.2} us\n  trends retained: {}",
                eval.workload,
                eval.config.label(),
                eval.file_size_percent,
                eval.degree_of_matching,
                eval.approximation_distance_us,
                if eval.trends_retained { "yes" } else { "NO" }
            )
        }
        _ => {
            let technique = trace_eval::ExtensionTechnique::Similarity(config);
            let eval = trace_eval::evaluate_technique(&app, technique);
            format!(
                "workload {}  method {}\n  file size: {:.2}% of full\n  approximation distance: {:.2} us\n  trends retained: {}\n  trace confidence: {:.3}",
                eval.workload,
                eval.technique,
                eval.file_size_percent,
                eval.approximation_distance_us,
                if eval.trends_retained { "yes" } else { "NO" },
                eval.confidence
            )
        }
    };
    Ok(text)
}

fn cmd_cluster(invocation: &Invocation) -> Result<String, String> {
    use trace_clustering::{
        cluster_reduce, euclidean_distance_matrix, hierarchical_clustering, kmeans, rank_features,
        silhouette_score, KMeansConfig, Linkage, Normalization,
    };

    let input = Path::new(invocation.require("in")?);
    let k = invocation
        .get_usize("k")?
        .ok_or_else(|| "missing required option --k for `cluster`".to_string())?;
    if k == 0 {
        return Err("--k must be at least 1".to_string());
    }
    let algorithm = invocation.get("algorithm").unwrap_or("kmeans");

    let app = load_app_trace(input)?;
    let features = rank_features(&app, Normalization::MinMax);
    let matrix = euclidean_distance_matrix(&features);
    let assignments = match algorithm {
        "kmeans" => kmeans(&features, &KMeansConfig::new(k)).assignments,
        "single" => hierarchical_clustering(&matrix, k, Linkage::Single),
        "complete" => hierarchical_clustering(&matrix, k, Linkage::Complete),
        "average" => hierarchical_clustering(&matrix, k, Linkage::Average),
        other => {
            return Err(format!(
                "unknown clustering algorithm {other:?} \
                 (expected kmeans, single, complete or average)"
            ))
        }
    };
    let score = silhouette_score(&matrix, &assignments);
    let clustered = cluster_reduce(&app, &assignments, &matrix);

    let mut output = format!(
        "clustered {} ({} ranks) into {} clusters with {algorithm} (silhouette {score:.3})\n",
        app.name,
        app.rank_count(),
        clustered.cluster_count()
    );
    for (cluster, &representative) in clustered.representatives.iter().enumerate() {
        let members: Vec<String> = clustered
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == cluster)
            .map(|(rank, _)| rank.to_string())
            .collect();
        output.push_str(&format!(
            "  cluster {cluster}: representative rank {representative}, members [{}]\n",
            members.join(", ")
        ));
    }
    output.push_str(&format!(
        "retained {:.1}% of the rank traces",
        100.0 * clustered.retained_fraction()
    ));

    if let Some(out) = invocation.get("out") {
        store_app_trace(Path::new(out), &clustered.retained, BinaryFormat::default())?;
        output.push_str(&format!("\nretained representative traces -> {out}"));
    }
    Ok(output)
}

fn cmd_extension_study(invocation: &Invocation) -> Result<String, String> {
    let kind = parse_workload(invocation.require("workload")?)?;
    let preset = parse_preset(invocation.get("preset"))?;
    let app = Workload::new(kind, preset).generate();
    let evaluations = trace_eval::extension_study(std::slice::from_ref(&app));
    Ok(format!(
        "{}\n{}",
        trace_eval::extension_table(&evaluations).render(),
        trace_eval::extension_summary_table(&evaluations).render()
    ))
}

/// Runs a parsed invocation, returning the text to print.
pub fn run(invocation: &Invocation) -> Result<String, String> {
    check_flags(invocation)?;
    match invocation.command.as_str() {
        "help" | "--help" | "-h" => Ok(usage()),
        "list" => Ok(cmd_list()),
        "generate" => cmd_generate(invocation),
        "reduce" => cmd_reduce(invocation),
        "sample" => cmd_sample(invocation),
        "reconstruct" => cmd_reconstruct(invocation),
        "convert" => cmd_convert(invocation),
        "analyze" => cmd_analyze(invocation),
        "report" => cmd_report(invocation),
        "evaluate" => cmd_evaluate(invocation),
        "cluster" => cmd_cluster(invocation),
        "extension-study" => cmd_extension_study(invocation),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("trace_tools_cmd_{}_{name}", std::process::id()));
        path
    }

    fn cleanup(paths: &[&PathBuf]) {
        for p in paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn list_and_help_are_informative() {
        let list = run(&Invocation::new("list", &[])).unwrap();
        assert!(list.contains("late_sender"));
        assert!(list.contains("avgWave"));
        assert!(list.contains("dtw"));
        let help = run(&Invocation::new("help", &[])).unwrap();
        assert!(help.contains("subcommands"));
        assert!(run(&Invocation::new("bogus", &[])).is_err());
    }

    #[test]
    fn generate_reduce_reconstruct_analyze_pipeline() {
        let trace = temp_path("pipeline.trc");
        let reduced = temp_path("pipeline_reduced.trc");
        let rebuilt = temp_path("pipeline_rebuilt.txt");

        let out = run(&Invocation::new(
            "generate",
            &[
                ("workload", "late_sender"),
                ("preset", "tiny"),
                ("out", trace.to_str().unwrap()),
            ],
        ))
        .unwrap();
        assert!(out.contains("late_sender"));
        assert!(trace.exists());

        let out = run(&Invocation::new(
            "reduce",
            &[
                ("in", trace.to_str().unwrap()),
                ("out", reduced.to_str().unwrap()),
                ("method", "avgWave"),
            ],
        ))
        .unwrap();
        assert!(out.contains("avgWave"), "{out}");
        assert!(reduced.exists());

        let out = run(&Invocation::new(
            "reconstruct",
            &[
                ("in", reduced.to_str().unwrap()),
                ("out", rebuilt.to_str().unwrap()),
            ],
        ))
        .unwrap();
        assert!(out.contains("reconstructed"), "{out}");
        assert!(rebuilt.exists());

        let out = run(&Invocation::new(
            "analyze",
            &[("in", rebuilt.to_str().unwrap())],
        ))
        .unwrap();
        assert!(out.contains("diagnosis of late_sender"), "{out}");

        cleanup(&[&trace, &reduced, &rebuilt]);
    }

    #[test]
    fn stream_reduce_matches_the_in_memory_path() {
        let text = temp_path("stream_in.txt");
        let reduced_mem = temp_path("stream_mem.trc");
        let reduced_stream = temp_path("stream_out.trc");

        run(&Invocation::new(
            "generate",
            &[
                ("workload", "dyn_load_balance"),
                ("preset", "tiny"),
                ("out", text.to_str().unwrap()),
            ],
        ))
        .unwrap();

        run(&Invocation::new(
            "reduce",
            &[
                ("in", text.to_str().unwrap()),
                ("out", reduced_mem.to_str().unwrap()),
                ("method", "relDiff"),
            ],
        ))
        .unwrap();

        let out = run(&Invocation::new(
            "reduce",
            &[
                ("in", text.to_str().unwrap()),
                ("out", reduced_stream.to_str().unwrap()),
                ("method", "relDiff"),
                ("stream", ""),
                ("shards", "3"),
            ],
        ))
        .unwrap();
        assert!(out.contains("stream-reduced"), "{out}");
        assert!(out.contains("resident segments <="), "{out}");

        // The streamed output file is byte-identical to the in-memory one.
        assert_eq!(
            std::fs::read(&reduced_mem).unwrap(),
            std::fs::read(&reduced_stream).unwrap()
        );

        cleanup(&[&text, &reduced_mem, &reduced_stream]);
    }

    #[test]
    fn stream_reduce_accepts_all_three_input_formats() {
        let trace_v1 = temp_path("stream_any_v1.trc");
        let trace_v2 = temp_path("stream_any_v2.trc");
        let text = temp_path("stream_any.txt");
        let reduced_mem = temp_path("stream_any_mem.trc");

        // `generate` writes a chunked v2 container by default now.
        let out = run(&Invocation::new(
            "generate",
            &[
                ("workload", "late_sender"),
                ("preset", "tiny"),
                ("out", trace_v2.to_str().unwrap()),
                ("chunk-segments", "4"),
            ],
        ))
        .unwrap();
        assert!(out.contains("container v2"), "{out}");
        assert_eq!(&std::fs::read(&trace_v2).unwrap()[..4], b"TRC2");
        run(&Invocation::new(
            "convert",
            &[
                ("in", trace_v2.to_str().unwrap()),
                ("out", text.to_str().unwrap()),
            ],
        ))
        .unwrap();
        // The monolithic v1 write path stays reachable via --v1.
        let out = run(&Invocation::new(
            "convert",
            &[
                ("in", trace_v2.to_str().unwrap()),
                ("out", trace_v1.to_str().unwrap()),
                ("v1", ""),
            ],
        ))
        .unwrap();
        assert!(out.contains("binary v1"), "{out}");
        assert_eq!(&std::fs::read(&trace_v1).unwrap()[..4], b"TRCF");
        assert_eq!(
            crate::io::load_app_trace(&trace_v2).unwrap(),
            crate::io::load_app_trace(&trace_v1).unwrap()
        );

        run(&Invocation::new(
            "reduce",
            &[
                ("in", text.to_str().unwrap()),
                ("out", reduced_mem.to_str().unwrap()),
                ("method", "avgWave"),
            ],
        ))
        .unwrap();
        let expected = std::fs::read(&reduced_mem).unwrap();

        for (input, marker) in [
            (&text, "text input"),
            (&trace_v1, "binary v1"),
            (&trace_v2, "container v2"),
        ] {
            let out_path = temp_path("stream_any_out.trc");
            let out = run(&Invocation::new(
                "reduce",
                &[
                    ("in", input.to_str().unwrap()),
                    ("out", out_path.to_str().unwrap()),
                    ("method", "avgWave"),
                    ("stream", ""),
                    ("shards", "2"),
                ],
            ))
            .unwrap();
            assert!(out.contains(marker), "{marker}: {out}");
            // Bit-identical output regardless of the input encoding.
            assert_eq!(std::fs::read(&out_path).unwrap(), expected, "{marker}");
            cleanup(&[&out_path]);
        }

        cleanup(&[&trace_v1, &trace_v2, &text, &reduced_mem]);
    }

    #[test]
    fn unknown_flags_are_rejected_with_the_valid_set() {
        let err = run(&Invocation::new(
            "reduce",
            &[
                ("in", "a"),
                ("out", "b"),
                ("method", "avgWave"),
                ("bogus", "1"),
            ],
        ))
        .unwrap_err();
        assert!(err.contains("unknown option --bogus"), "{err}");
        assert!(err.contains("--threshold"), "{err}");

        let err = run(&Invocation::new("list", &[("verbose", "")])).unwrap_err();
        assert!(err.contains("takes no flags"), "{err}");

        // Unknown subcommands still get the subcommand error, not a flag one.
        let err = run(&Invocation::new("bogus", &[("x", "1")])).unwrap_err();
        assert!(err.contains("unknown subcommand"), "{err}");

        // Container-only flags conflict with the monolithic --v1 switch.
        let err = run(&Invocation::new(
            "convert",
            &[("in", "a"), ("out", "b"), ("v1", ""), ("codec", "lz")],
        ))
        .unwrap_err();
        assert!(err.contains("--v1"), "{err}");

        // Binary output flags are rejected for text outputs — on every
        // command that writes traces, not just convert (a silently dropped
        // --codec would let a user believe they wrote a compressed file).
        let err = run(&Invocation::new(
            "convert",
            &[("in", "a"), ("out", "b.txt"), ("codec", "lz")],
        ))
        .unwrap_err();
        assert!(err.contains("text extension"), "{err}");
        let err = run(&Invocation::new(
            "generate",
            &[
                ("workload", "late_sender"),
                ("out", "/tmp/x.txt"),
                ("codec", "delta-lz"),
            ],
        ))
        .unwrap_err();
        assert!(err.contains("text extension"), "{err}");
        let err = run(&Invocation::new(
            "reduce",
            &[
                ("in", "a"),
                ("out", "b.trctxt"),
                ("method", "avgWave"),
                ("v1", ""),
            ],
        ))
        .unwrap_err();
        assert!(err.contains("text extension"), "{err}");

        // Unknown codec names list the valid ones.
        let err = run(&Invocation::new(
            "generate",
            &[
                ("workload", "late_sender"),
                ("out", "/tmp/x.trc"),
                ("codec", "zstd"),
            ],
        ))
        .unwrap_err();
        assert!(err.contains("delta-lz"), "{err}");
    }

    #[test]
    fn binary_writes_default_to_the_delta_lz_codec() {
        let default_out = temp_path("default_codec.trc");
        let none_out = temp_path("default_codec_none.trc");
        // No --codec flag: delta-lz is the default...
        let out = run(&Invocation::new(
            "generate",
            &[
                ("workload", "sweep3d_8p"),
                ("preset", "tiny"),
                ("out", default_out.to_str().unwrap()),
            ],
        ))
        .unwrap();
        assert!(out.contains("codec delta-lz"), "{out}");
        // ...and --codec none still opts out.
        let out = run(&Invocation::new(
            "generate",
            &[
                ("workload", "sweep3d_8p"),
                ("preset", "tiny"),
                ("out", none_out.to_str().unwrap()),
                ("codec", "none"),
            ],
        ))
        .unwrap();
        assert!(out.contains("codec none"), "{out}");
        assert_eq!(
            crate::io::load_app_trace(&default_out).unwrap(),
            crate::io::load_app_trace(&none_out).unwrap()
        );
        let compressed = std::fs::metadata(&default_out).unwrap().len();
        let uncompressed = std::fs::metadata(&none_out).unwrap().len();
        assert!(
            compressed < uncompressed,
            "default write must compress: {compressed} vs {uncompressed} bytes"
        );
        cleanup(&[&default_out, &none_out]);
    }

    #[test]
    fn codecs_round_trip_through_the_cli_and_delta_lz_shrinks_the_file() {
        let none = temp_path("codec_none.trc");
        let dlz = temp_path("codec_dlz.trc");
        for (path, codec) in [(&none, "none"), (&dlz, "delta-lz")] {
            let out = run(&Invocation::new(
                "generate",
                &[
                    ("workload", "dyn_load_balance"),
                    ("preset", "tiny"),
                    ("out", path.to_str().unwrap()),
                    ("codec", codec),
                ],
            ))
            .unwrap();
            assert!(out.contains(&format!("codec {codec}")), "{out}");
        }
        // Same trace back from both encodings, smaller file under delta-lz.
        assert_eq!(
            crate::io::load_app_trace(&none).unwrap(),
            crate::io::load_app_trace(&dlz).unwrap()
        );
        let none_len = std::fs::metadata(&none).unwrap().len();
        let dlz_len = std::fs::metadata(&dlz).unwrap().len();
        assert!(
            dlz_len < none_len,
            "delta-lz {dlz_len} bytes vs none {none_len} bytes"
        );

        // Compressed containers stream-reduce like uncompressed ones.
        let reduced = temp_path("codec_dlz_reduced.trc");
        let out = run(&Invocation::new(
            "reduce",
            &[
                ("in", dlz.to_str().unwrap()),
                ("out", reduced.to_str().unwrap()),
                ("method", "avgWave"),
                ("stream", ""),
            ],
        ))
        .unwrap();
        assert!(out.contains("container v2"), "{out}");
        cleanup(&[&none, &dlz, &reduced]);
    }

    #[test]
    fn stream_reduce_rejects_extension_methods_and_bad_shards() {
        let err = run(&Invocation::new(
            "reduce",
            &[
                ("in", "/tmp/x.txt"),
                ("out", "/tmp/y.trc"),
                ("method", "dtw"),
                ("stream", ""),
            ],
        ))
        .unwrap_err();
        assert!(err.contains("paper methods"), "{err}");

        let err = run(&Invocation::new(
            "reduce",
            &[
                ("in", "/tmp/x.txt"),
                ("out", "/tmp/y.trc"),
                ("method", "relDiff"),
                ("stream", ""),
                ("shards", "0"),
            ],
        ))
        .unwrap_err();
        assert!(err.contains("--shards"), "{err}");

        // --shards without --stream would otherwise be silently ignored.
        let err = run(&Invocation::new(
            "reduce",
            &[
                ("in", "/tmp/x.txt"),
                ("out", "/tmp/y.trc"),
                ("method", "relDiff"),
                ("shards", "4"),
            ],
        ))
        .unwrap_err();
        assert!(err.contains("add --stream"), "{err}");
    }

    #[test]
    fn sample_and_convert_commands_work() {
        let trace = temp_path("sample.trc");
        let text = temp_path("sample.txt");
        let sampled = temp_path("sampled.trc");

        run(&Invocation::new(
            "generate",
            &[
                ("workload", "early_gather"),
                ("preset", "tiny"),
                ("out", trace.to_str().unwrap()),
            ],
        ))
        .unwrap();

        let out = run(&Invocation::new(
            "convert",
            &[
                ("in", trace.to_str().unwrap()),
                ("out", text.to_str().unwrap()),
            ],
        ))
        .unwrap();
        assert!(out.contains("converted"));
        // The text file parses back to the same trace.
        assert_eq!(
            crate::io::load_app_trace(&trace).unwrap(),
            crate::io::load_app_trace(&text).unwrap()
        );

        let out = run(&Invocation::new(
            "sample",
            &[
                ("in", text.to_str().unwrap()),
                ("out", sampled.to_str().unwrap()),
                ("policy", "every:4"),
            ],
        ))
        .unwrap();
        assert!(out.contains("every4"), "{out}");

        cleanup(&[&trace, &text, &sampled]);
    }

    #[test]
    fn evaluate_reports_criteria_for_paper_and_extension_methods() {
        let out = run(&Invocation::new(
            "evaluate",
            &[
                ("workload", "late_sender"),
                ("preset", "tiny"),
                ("method", "avgWave"),
            ],
        ))
        .unwrap();
        assert!(out.contains("degree of matching"), "{out}");
        let out = run(&Invocation::new(
            "evaluate",
            &[
                ("workload", "late_sender"),
                ("preset", "tiny"),
                ("method", "dtw"),
            ],
        ))
        .unwrap();
        assert!(out.contains("trace confidence"), "{out}");
    }

    #[test]
    fn cluster_command_reports_clusters_and_can_store_representatives() {
        let trace = temp_path("cluster_in.trc");
        let retained = temp_path("cluster_retained.trc");
        run(&Invocation::new(
            "generate",
            &[
                ("workload", "dyn_load_balance"),
                ("preset", "tiny"),
                ("out", trace.to_str().unwrap()),
            ],
        ))
        .unwrap();

        for algorithm in ["kmeans", "average"] {
            let out = run(&Invocation::new(
                "cluster",
                &[
                    ("in", trace.to_str().unwrap()),
                    ("k", "2"),
                    ("algorithm", algorithm),
                ],
            ))
            .unwrap();
            assert!(out.contains("cluster 0"), "{algorithm}: {out}");
            assert!(out.contains("silhouette"), "{algorithm}: {out}");
        }

        let out = run(&Invocation::new(
            "cluster",
            &[
                ("in", trace.to_str().unwrap()),
                ("k", "2"),
                ("out", retained.to_str().unwrap()),
            ],
        ))
        .unwrap();
        assert!(out.contains("retained"), "{out}");
        assert!(retained.exists());
        let loaded = crate::io::load_app_trace(&retained).unwrap();
        assert!(loaded.rank_count() <= 2);

        let err = run(&Invocation::new(
            "cluster",
            &[
                ("in", trace.to_str().unwrap()),
                ("k", "2"),
                ("algorithm", "voronoi"),
            ],
        ))
        .unwrap_err();
        assert!(err.contains("clustering algorithm"), "{err}");

        cleanup(&[&trace, &retained]);
    }

    #[test]
    fn extension_study_command_prints_both_tables() {
        let out = run(&Invocation::new(
            "extension-study",
            &[("workload", "late_sender"), ("preset", "tiny")],
        ))
        .unwrap();
        assert!(out.contains("Extension study"), "{out}");
        assert!(out.contains("summary"), "{out}");
        assert!(out.contains("sampling:every10"), "{out}");
    }

    #[test]
    fn obs_flags_emit_reports_without_changing_the_output() {
        let trace = temp_path("obs_in.trc");
        let plain = temp_path("obs_plain.trc");
        let observed = temp_path("obs_observed.trc");
        let report = temp_path("obs_report.json");

        // generate with --obs appends a text run report with Store timing.
        let out = run(&Invocation::new(
            "generate",
            &[
                ("workload", "late_sender"),
                ("preset", "tiny"),
                ("out", trace.to_str().unwrap()),
                ("obs", ""),
            ],
        ))
        .unwrap();
        assert!(out.contains("== run report =="), "{out}");
        assert!(out.contains("store"), "{out}");
        assert!(out.contains("chunk.writes"), "{out}");

        // The reduced output is byte-identical with and without recording.
        run(&Invocation::new(
            "reduce",
            &[
                ("in", trace.to_str().unwrap()),
                ("out", plain.to_str().unwrap()),
                ("method", "avgWave"),
            ],
        ))
        .unwrap();
        let out = run(&Invocation::new(
            "reduce",
            &[
                ("in", trace.to_str().unwrap()),
                ("out", observed.to_str().unwrap()),
                ("method", "avgWave"),
                ("obs-out", report.to_str().unwrap()),
            ],
        ))
        .unwrap();
        assert!(out.contains("run report (json) ->"), "{out}");
        assert_eq!(
            std::fs::read(&plain).unwrap(),
            std::fs::read(&observed).unwrap(),
            "recording must not change the written trace"
        );

        // The --obs-out file is valid against the documented schema and
        // round-trips through the parser losslessly.
        let json = std::fs::read_to_string(&report).unwrap();
        let parsed = trace_obs::RunReport::from_json(&json).unwrap();
        assert!(parsed.counters.contains_key("match.comparisons"), "{json}");
        assert_eq!(parsed.render_json(), json, "one canonical serialization");

        cleanup(&[&trace, &plain, &observed, &report]);
    }

    #[test]
    fn obs_covers_streaming_extension_and_chrome_formats() {
        let trace = temp_path("obs_stream_in.trc");
        let reduced = temp_path("obs_stream_out.trc");
        run(&Invocation::new(
            "generate",
            &[
                ("workload", "dyn_load_balance"),
                ("preset", "tiny"),
                ("out", trace.to_str().unwrap()),
            ],
        ))
        .unwrap();

        // Streaming reduction with a text report: per-rank spans show up.
        let out = run(&Invocation::new(
            "reduce",
            &[
                ("in", trace.to_str().unwrap()),
                ("out", reduced.to_str().unwrap()),
                ("method", "relDiff"),
                ("stream", ""),
                ("shards", "2"),
                ("obs", ""),
            ],
        ))
        .unwrap();
        assert!(out.contains("== run report =="), "{out}");
        assert!(out.contains("rank"), "{out}");
        assert!(out.contains("stream.events"), "{out}");

        // Extension methods record the coarse Match span.
        let out = run(&Invocation::new(
            "reduce",
            &[
                ("in", trace.to_str().unwrap()),
                ("out", reduced.to_str().unwrap()),
                ("method", "dtw"),
                ("obs", ""),
            ],
        ))
        .unwrap();
        assert!(out.contains("match"), "{out}");

        // convert emits a chrome trace with Parse and Store slices.
        let out = run(&Invocation::new(
            "convert",
            &[
                ("in", trace.to_str().unwrap()),
                ("out", reduced.to_str().unwrap()),
                ("obs-format", "chrome"),
            ],
        ))
        .unwrap();
        assert!(out.contains("traceEvents"), "{out}");
        assert!(out.contains("\"parse\""), "{out}");
        assert!(out.contains("\"store\""), "{out}");

        // Bad formats are rejected with the valid set.
        let err = run(&Invocation::new(
            "convert",
            &[
                ("in", trace.to_str().unwrap()),
                ("out", reduced.to_str().unwrap()),
                ("obs-format", "xml"),
            ],
        ))
        .unwrap_err();
        assert!(err.contains("text, json or chrome"), "{err}");

        // --obs-out without a value is an error, not a silent drop.
        let err = run(&Invocation::new(
            "convert",
            &[
                ("in", trace.to_str().unwrap()),
                ("out", reduced.to_str().unwrap()),
                ("obs-out", ""),
            ],
        ))
        .unwrap_err();
        assert!(err.contains("--obs-out"), "{err}");

        // Commands that never record reject the obs flags.
        let err = run(&Invocation::new(
            "sample",
            &[
                ("in", "a"),
                ("out", "b"),
                ("policy", "every:4"),
                ("obs", ""),
            ],
        ))
        .unwrap_err();
        assert!(err.contains("unknown option --obs"), "{err}");

        cleanup(&[&trace, &reduced]);
    }

    #[test]
    fn report_subcommand_renders_all_three_sinks() {
        let trace = temp_path("report_in.trc");
        let reduced = temp_path("report_reduced.trc");
        let obs_json = temp_path("report_obs.json");
        let html = temp_path("report.html");
        let chrome = temp_path("report_chrome.json");
        let inline = temp_path("report_inline.html");

        run(&Invocation::new(
            "generate",
            &[
                ("workload", "late_sender"),
                ("preset", "tiny"),
                ("out", trace.to_str().unwrap()),
            ],
        ))
        .unwrap();
        // `reduce --report` writes the HTML report alongside the trace.
        let out = run(&Invocation::new(
            "reduce",
            &[
                ("in", trace.to_str().unwrap()),
                ("out", reduced.to_str().unwrap()),
                ("method", "relDiff"),
                ("obs-out", obs_json.to_str().unwrap()),
                ("report", inline.to_str().unwrap()),
            ],
        ))
        .unwrap();
        assert!(out.contains("analysis report ->"), "{out}");
        let inline_html = std::fs::read_to_string(&inline).unwrap();
        assert!(inline_html.contains("<!DOCTYPE html>"), "html preamble");
        assert!(
            inline_html.contains("id=\"pipeline\""),
            "obs run must embed pipeline metrics"
        );

        // The standalone subcommand: text to stdout, HTML + chrome files.
        let out = run(&Invocation::new(
            "report",
            &[
                ("in", reduced.to_str().unwrap()),
                ("full", trace.to_str().unwrap()),
                ("run-report", obs_json.to_str().unwrap()),
                ("html", html.to_str().unwrap()),
                ("chrome", chrome.to_str().unwrap()),
            ],
        ))
        .unwrap();
        assert!(out.contains("== trace report:"), "{out}");
        assert!(out.contains("divergent ranks:"), "{out}");
        assert!(out.contains("region trie"), "{out}");
        assert!(out.contains("file size:"), "--full adds compression");
        assert!(out.contains("pipeline stages"), "--run-report adds metrics");

        let html_text = std::fs::read_to_string(&html).unwrap();
        assert!(html_text.contains("id=\"report-data\""), "JSON island");
        assert!(html_text.contains("id=\"divergent-ranks\""), "{html_text}");
        assert!(
            !html_text.contains("http://") && !html_text.contains("https://"),
            "self-contained: no external assets"
        );
        let chrome_text = std::fs::read_to_string(&chrome).unwrap();
        let events = trace_obs::chrome::parse(&chrome_text).unwrap();
        assert!(!events.is_empty(), "reduced timeline has events");
        assert!(events.iter().all(|e| e.cat == "reduced"));

        // Unknown flags on `report` list the valid set.
        let err = run(&Invocation::new("report", &[("in", "x"), ("bogus", "1")])).unwrap_err();
        assert!(err.contains("unknown option --bogus"), "{err}");
        assert!(err.contains("--divergence-threshold"), "{err}");

        cleanup(&[&trace, &reduced, &obs_json, &html, &chrome, &inline]);
    }

    #[test]
    fn helpful_errors_for_bad_inputs() {
        let err = run(&Invocation::new(
            "generate",
            &[("workload", "not_a_workload"), ("out", "/tmp/x.trc")],
        ))
        .unwrap_err();
        assert!(err.contains("known workloads"), "{err}");

        let err = run(&Invocation::new(
            "reduce",
            &[
                ("in", "/tmp/x.trc"),
                ("out", "/tmp/y.trc"),
                ("method", "nope"),
            ],
        ))
        .unwrap_err();
        assert!(err.contains("known methods"), "{err}");

        let err = run(&Invocation::new(
            "sample",
            &[("in", "a"), ("out", "b"), ("policy", "sometimes")],
        ))
        .unwrap_err();
        assert!(err.contains("policy"), "{err}");

        let err = run(&Invocation::new("evaluate", &[("workload", "late_sender")])).unwrap_err();
        assert!(err.contains("--method"), "{err}");
    }
}
