#![forbid(unsafe_code)]
//! The `trace-tools` binary: generate, reduce, convert and analyze traces.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match trace_tools::parse_args(&args).and_then(|invocation| trace_tools::run(&invocation)) {
        Ok(output) => {
            if !output.is_empty() {
                println!("{output}");
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", trace_tools::commands::usage());
            ExitCode::FAILURE
        }
    }
}
