//! Minimal argument parsing for `trace-tools`.
//!
//! The grammar is deliberately simple — `trace-tools <subcommand>
//! [--flag value]…` — so no external argument-parsing dependency is needed.

use std::collections::BTreeMap;

/// A parsed invocation: the subcommand plus its `--flag value` options.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Invocation {
    /// The subcommand name (e.g. `generate`).
    pub command: String,
    /// Flag values keyed by flag name (without the leading `--`).
    pub options: BTreeMap<String, String>,
}

impl Invocation {
    /// Creates an invocation (used by tests and the examples).
    pub fn new(command: &str, options: &[(&str, &str)]) -> Self {
        Invocation {
            command: command.to_string(),
            options: options
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Returns a required option or a descriptive error.
    pub fn require(&self, flag: &str) -> Result<&str, String> {
        self.options
            .get(flag)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{flag} for `{}`", self.command))
    }

    /// Returns an optional option.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(String::as_str)
    }

    /// Returns an optional option parsed as `f64`.
    pub fn get_f64(&self, flag: &str) -> Result<Option<f64>, String> {
        match self.get(flag) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<f64>()
                .map(Some)
                .map_err(|_| format!("option --{flag} expects a number, got {raw:?}")),
        }
    }

    /// Returns an optional option parsed as `usize`.
    pub fn get_usize(&self, flag: &str) -> Result<Option<usize>, String> {
        match self.get(flag) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("option --{flag} expects an integer, got {raw:?}")),
        }
    }
}

/// Parses raw command-line arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Invocation, String> {
    let mut iter = args.iter();
    let command = iter
        .next()
        .ok_or_else(|| "no subcommand given".to_string())?
        .clone();
    // `--help`/`-h` look like flags but are dispatched as the `help`
    // subcommand (commands::run already accepts them).
    if command.starts_with('-') && command != "--help" && command != "-h" {
        return Err(format!("expected a subcommand, found flag {command:?}"));
    }
    let mut options = BTreeMap::new();
    while let Some(flag) = iter.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, found {flag:?}"))?;
        if name.is_empty() {
            return Err("empty flag name".to_string());
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("flag --{name} is missing its value"))?;
        if options.insert(name.to_string(), value.clone()).is_some() {
            return Err(format!("flag --{name} was given more than once"));
        }
    }
    Ok(Invocation { command, options })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let inv = parse_args(&strings(&[
            "reduce",
            "--method",
            "avgWave",
            "--threshold",
            "0.2",
        ]))
        .unwrap();
        assert_eq!(inv.command, "reduce");
        assert_eq!(inv.require("method").unwrap(), "avgWave");
        assert_eq!(inv.get_f64("threshold").unwrap(), Some(0.2));
        assert_eq!(inv.get("missing"), None);
        assert_eq!(inv.get_f64("missing").unwrap(), None);
    }

    #[test]
    fn rejects_missing_subcommand_and_values() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&strings(&["--method", "x"])).is_err());
        assert!(parse_args(&strings(&["reduce", "--method"])).is_err());
        assert!(parse_args(&strings(&["reduce", "method", "x"])).is_err());
        assert!(parse_args(&strings(&["reduce", "--", "x"])).is_err());
    }

    #[test]
    fn rejects_duplicate_flags_and_bad_numbers() {
        assert!(parse_args(&strings(&["x", "--a", "1", "--a", "2"])).is_err());
        let inv = parse_args(&strings(&["x", "--k", "abc"])).unwrap();
        assert!(inv.get_f64("k").is_err());
        assert!(inv.get_usize("k").is_err());
    }

    #[test]
    fn require_reports_the_subcommand() {
        let inv = Invocation::new("generate", &[]);
        let err = inv.require("workload").unwrap_err();
        assert!(err.contains("--workload"));
        assert!(err.contains("generate"));
    }
}
