//! Minimal argument parsing for `trace-tools`.
//!
//! The grammar is deliberately simple — `trace-tools <subcommand>
//! [--flag value]…` — so no external argument-parsing dependency is needed.

use std::collections::BTreeMap;

/// A parsed invocation: the subcommand plus its `--flag value` options.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Invocation {
    /// The subcommand name (e.g. `generate`).
    pub command: String,
    /// Flag values keyed by flag name (without the leading `--`).
    pub options: BTreeMap<String, String>,
}

impl Invocation {
    /// Creates an invocation (used by tests and the examples).
    pub fn new(command: &str, options: &[(&str, &str)]) -> Self {
        Invocation {
            command: command.to_string(),
            options: options
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Returns a required option or a descriptive error.
    pub fn require(&self, flag: &str) -> Result<&str, String> {
        match self.options.get(flag).map(String::as_str) {
            Some("") => Err(format!("option --{flag} needs a value")),
            Some(value) => Ok(value),
            None => Err(format!(
                "missing required option --{flag} for `{}`",
                self.command
            )),
        }
    }

    /// Returns an optional option.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(String::as_str)
    }

    /// True if the flag was given at all — with or without a value.  This
    /// is how boolean switches such as `--stream` are tested.
    pub fn has(&self, flag: &str) -> bool {
        self.options.contains_key(flag)
    }

    /// Returns an optional option parsed as `f64`.
    pub fn get_f64(&self, flag: &str) -> Result<Option<f64>, String> {
        match self.get(flag) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<f64>()
                .map(Some)
                .map_err(|_| format!("option --{flag} expects a number, got {raw:?}")),
        }
    }

    /// Returns an optional option parsed as `usize`.
    pub fn get_usize(&self, flag: &str) -> Result<Option<usize>, String> {
        match self.get(flag) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("option --{flag} expects an integer, got {raw:?}")),
        }
    }
}

/// Binary-output flags shared by every command that writes `.trc` files
/// (`generate`, `reduce`, `convert`).
pub const BINARY_OUTPUT_FLAGS: &[&str] = &["codec", "chunk-segments", "v1"];

/// Observability flags shared by the instrumented commands.
pub const OBS_FLAGS: &[&str] = &["obs", "obs-out", "obs-format"];

/// Declarative flag specification for one subcommand: the flags it owns
/// plus any shared flag groups it participates in.  `commands::run`
/// rejects anything not listed here instead of silently ignoring it, so
/// every flag an implementation reads must appear in [`COMMAND_SPECS`].
#[derive(Clone, Copy, Debug)]
pub struct CommandSpec {
    /// Canonical subcommand name.
    pub name: &'static str,
    /// Flags specific to this subcommand, in usage order.
    pub own: &'static [&'static str],
    /// Shared flag groups (e.g. [`BINARY_OUTPUT_FLAGS`], [`OBS_FLAGS`]).
    pub groups: &'static [&'static [&'static str]],
}

impl CommandSpec {
    /// True if the subcommand accepts `flag`.
    pub fn allows(&self, flag: &str) -> bool {
        self.own.contains(&flag) || self.groups.iter().any(|group| group.contains(&flag))
    }

    /// All accepted flags: own flags first, then each group in order.
    pub fn flags(&self) -> Vec<&'static str> {
        let mut flags: Vec<&'static str> = self.own.to_vec();
        for group in self.groups {
            flags.extend_from_slice(group);
        }
        flags
    }
}

/// The flag table for every `trace-tools` subcommand.
pub const COMMAND_SPECS: &[CommandSpec] = &[
    CommandSpec {
        name: "help",
        own: &[],
        groups: &[],
    },
    CommandSpec {
        name: "list",
        own: &[],
        groups: &[],
    },
    CommandSpec {
        name: "generate",
        own: &["workload", "preset", "out"],
        groups: &[BINARY_OUTPUT_FLAGS, OBS_FLAGS],
    },
    CommandSpec {
        name: "reduce",
        own: &[
            "in",
            "out",
            "method",
            "threshold",
            "stream",
            "shards",
            "report",
        ],
        groups: &[BINARY_OUTPUT_FLAGS, OBS_FLAGS],
    },
    CommandSpec {
        name: "sample",
        own: &["in", "out", "policy", "seed"],
        groups: &[],
    },
    CommandSpec {
        name: "reconstruct",
        own: &["in", "out"],
        groups: &[],
    },
    CommandSpec {
        name: "convert",
        own: &["in", "out", "container"],
        groups: &[BINARY_OUTPUT_FLAGS, OBS_FLAGS],
    },
    CommandSpec {
        name: "analyze",
        own: &["in"],
        groups: &[],
    },
    CommandSpec {
        name: "report",
        own: &[
            "in",
            "full",
            "run-report",
            "method",
            "threshold",
            "divergence-threshold",
            "html",
            "chrome",
        ],
        groups: &[],
    },
    CommandSpec {
        name: "evaluate",
        own: &["workload", "method", "threshold", "preset"],
        groups: &[],
    },
    CommandSpec {
        name: "cluster",
        own: &["in", "k", "algorithm", "out"],
        groups: &[],
    },
    CommandSpec {
        name: "extension-study",
        own: &["workload", "preset"],
        groups: &[],
    },
];

/// Looks up the spec for a subcommand; `--help`/`-h` alias `help`.
/// `None` means the subcommand itself is unknown (reported by the
/// dispatcher, not as a flag error).
pub fn command_spec(command: &str) -> Option<&'static CommandSpec> {
    let canonical = match command {
        "--help" | "-h" => "help",
        other => other,
    };
    COMMAND_SPECS.iter().find(|spec| spec.name == canonical)
}

/// Rejects flags the subcommand does not define, listing the valid ones.
pub fn check_flags(invocation: &Invocation) -> Result<(), String> {
    let Some(spec) = command_spec(&invocation.command) else {
        return Ok(()); // unknown subcommand: reported by the dispatcher
    };
    for flag in invocation.options.keys() {
        if !spec.allows(flag) {
            let valid = if spec.own.is_empty() && spec.groups.is_empty() {
                "it takes no flags".to_string()
            } else {
                format!(
                    "valid flags: {}",
                    spec.flags()
                        .iter()
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            return Err(format!(
                "unknown option --{flag} for `{}`; {valid}",
                invocation.command
            ));
        }
    }
    Ok(())
}

/// Parses raw command-line arguments (without the program name).
///
/// Flags take the form `--flag value`; a flag followed by another flag (or
/// by the end of the arguments) is a boolean switch, stored with an empty
/// value and tested with [`Invocation::has`] (e.g. `reduce --stream`).
pub fn parse_args(args: &[String]) -> Result<Invocation, String> {
    let mut iter = args.iter().peekable();
    let command = iter
        .next()
        .ok_or_else(|| "no subcommand given".to_string())?
        .clone();
    // `--help`/`-h` look like flags but are dispatched as the `help`
    // subcommand (commands::run already accepts them).
    if command.starts_with('-') && command != "--help" && command != "-h" {
        return Err(format!("expected a subcommand, found flag {command:?}"));
    }
    let mut options = BTreeMap::new();
    while let Some(flag) = iter.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, found {flag:?}"))?;
        if name.is_empty() {
            return Err("empty flag name".to_string());
        }
        let value = match iter.peek() {
            Some(next) if !next.starts_with("--") => iter.next().expect("just peeked").clone(),
            _ => String::new(),
        };
        if options.insert(name.to_string(), value).is_some() {
            return Err(format!("flag --{name} was given more than once"));
        }
    }
    Ok(Invocation { command, options })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let inv = parse_args(&strings(&[
            "reduce",
            "--method",
            "avgWave",
            "--threshold",
            "0.2",
        ]))
        .unwrap();
        assert_eq!(inv.command, "reduce");
        assert_eq!(inv.require("method").unwrap(), "avgWave");
        assert_eq!(inv.get_f64("threshold").unwrap(), Some(0.2));
        assert_eq!(inv.get("missing"), None);
        assert_eq!(inv.get_f64("missing").unwrap(), None);
    }

    #[test]
    fn rejects_missing_subcommand_and_bad_flags() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&strings(&["--method", "x"])).is_err());
        assert!(parse_args(&strings(&["reduce", "method", "x"])).is_err());
        assert!(parse_args(&strings(&["reduce", "--", "x"])).is_err());
    }

    #[test]
    fn value_less_flags_are_boolean_switches() {
        let inv = parse_args(&strings(&["reduce", "--stream", "--shards", "4"])).unwrap();
        assert!(inv.has("stream"));
        assert!(!inv.has("method"));
        assert_eq!(inv.get_usize("shards").unwrap(), Some(4));
        // A switch at the end of the arguments works too.
        let inv = parse_args(&strings(&["reduce", "--method", "avgWave", "--stream"])).unwrap();
        assert!(inv.has("stream"));
        assert_eq!(inv.require("method").unwrap(), "avgWave");
        // `require` refuses to treat a bare switch as a value.
        let inv = parse_args(&strings(&["reduce", "--method"])).unwrap();
        let err = inv.require("method").unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn rejects_duplicate_flags_and_bad_numbers() {
        assert!(parse_args(&strings(&["x", "--a", "1", "--a", "2"])).is_err());
        let inv = parse_args(&strings(&["x", "--k", "abc"])).unwrap();
        assert!(inv.get_f64("k").is_err());
        assert!(inv.get_usize("k").is_err());
    }

    #[test]
    fn require_reports_the_subcommand() {
        let inv = Invocation::new("generate", &[]);
        let err = inv.require("workload").unwrap_err();
        assert!(err.contains("--workload"));
        assert!(err.contains("generate"));
    }

    #[test]
    fn specs_are_unique_and_groups_expand() {
        let mut names: Vec<_> = COMMAND_SPECS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COMMAND_SPECS.len(), "duplicate command spec");
        for spec in COMMAND_SPECS {
            let flags = spec.flags();
            let mut sorted = flags.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), flags.len(), "duplicate flag in {}", spec.name);
            for flag in &flags {
                assert!(spec.allows(flag), "{} must allow --{flag}", spec.name);
            }
        }
        let reduce = command_spec("reduce").unwrap();
        assert!(reduce.allows("codec"), "group flags are honoured");
        assert!(reduce.allows("obs-format"));
        assert!(!reduce.allows("policy"));
    }

    #[test]
    fn help_aliases_resolve_and_unknown_commands_do_not() {
        assert!(command_spec("--help").is_some());
        assert!(command_spec("-h").is_some());
        assert!(command_spec("no-such-command").is_none());
    }

    #[test]
    fn check_flags_lists_the_valid_set() {
        let inv = Invocation::new("reduce", &[("bogus", "1")]);
        let err = check_flags(&inv).unwrap_err();
        assert!(err.contains("unknown option --bogus"), "{err}");
        assert!(err.contains("--threshold"), "{err}");
        assert!(err.contains("--codec"), "{err}");
        let inv = Invocation::new("list", &[("bogus", "")]);
        let err = check_flags(&inv).unwrap_err();
        assert!(err.contains("takes no flags"), "{err}");
        // Unknown subcommands pass: the dispatcher reports those.
        let inv = Invocation::new("no-such-command", &[("anything", "")]);
        assert!(check_flags(&inv).is_ok());
    }
}
