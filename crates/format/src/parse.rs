//! Parsers for the text trace format.
//!
//! These parsers materialize a whole trace from an in-memory `&str`.  The
//! line-level record parsing is shared with the streaming path (the
//! `trace_stream` crate) via [`crate::record`], so both parsers accept
//! exactly the same language.

use trace_model::{
    AppTrace, RankTrace, ReducedAppTrace, ReducedRankTrace, Segment, SegmentExec, StoredSegment,
    Time,
};

use crate::error::FormatError;
use crate::record::{
    parse_app_body_line, parse_context_ref, parse_event_line, parse_u32, parse_u64, AppBodyLine,
    HeaderBuilder, TraceTables,
};
use crate::write::{APP_HEADER, REDUCED_HEADER};

/// A line with its 1-based number, with blank and comment lines skipped.
struct Lines<'a> {
    inner: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Lines {
            inner: text.lines().enumerate(),
        }
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        for (index, line) in self.inner.by_ref() {
            if let Some(trimmed) = crate::record::meaningful_line(line) {
                return Some((index + 1, trimmed));
            }
        }
        None
    }

    fn require(&mut self, what: &str) -> Result<(usize, &'a str), FormatError> {
        self.next().ok_or_else(|| {
            FormatError::structural(format!("unexpected end of input, expected {what}"))
        })
    }
}

/// Checks the magic first line of a trace file.
fn expect_magic(lines: &mut Lines<'_>, magic: &str) -> Result<(), FormatError> {
    let (line_no, first) = lines.require("header")?;
    if first != magic {
        return Err(FormatError::at(
            line_no,
            format!("expected header {magic:?}, found {first:?}"),
        ));
    }
    Ok(())
}

/// Parses the shared header, returning the tables plus the first body line
/// (already consumed from the iterator) for the caller to process.
fn parse_header(
    lines: &mut Lines<'_>,
) -> Result<(TraceTables, Option<(usize, String)>), FormatError> {
    let mut builder = HeaderBuilder::new();
    loop {
        let (line_no, line) = lines.require(builder.expecting())?;
        if !builder.feed(line_no, line)? {
            return Ok((builder.finish()?, Some((line_no, line.to_string()))));
        }
    }
}

/// Parses the text form of a full application trace.
pub fn parse_app_trace(text: &str) -> Result<AppTrace, FormatError> {
    let mut lines = Lines::new(text);
    expect_magic(&mut lines, APP_HEADER)?;
    let (tables, mut pending) = parse_header(&mut lines)?;
    let mut app = AppTrace {
        name: tables.name.clone(),
        regions: tables.regions.clone(),
        contexts: tables.contexts.clone(),
        ranks: Vec::with_capacity(tables.declared_ranks),
    };

    let mut open_rank: Option<RankTrace> = None;
    loop {
        let (line_no, line) = match pending.take() {
            Some((n, l)) => (n, l),
            None => {
                let what = if open_rank.is_some() {
                    "rank records or END_RANK"
                } else {
                    "RANK or END_TRACE"
                };
                let (n, l) = lines.require(what)?;
                (n, l.to_string())
            }
        };
        // `parse_app_body_line` only yields records and END_RANK when told a
        // rank section is open, so these arms report a parser bug as a
        // structural error instead of trusting the invariant with a panic.
        match parse_app_body_line(&tables, line_no, &line, open_rank.is_some())? {
            AppBodyLine::RankStart(rank) => open_rank = Some(RankTrace::new(rank)),
            AppBodyLine::Record(record) => match open_rank.as_mut() {
                Some(rank) => rank.push(record),
                None => {
                    return Err(FormatError::at(line_no, "record outside a rank section"));
                }
            },
            AppBodyLine::EndRank => match open_rank.take() {
                Some(rank) => app.ranks.push(rank),
                None => {
                    return Err(FormatError::at(line_no, "END_RANK outside a rank section"));
                }
            },
            AppBodyLine::EndTrace => break,
        }
    }

    if app.ranks.len() != tables.declared_ranks {
        return Err(FormatError::structural(format!(
            "header declares {} ranks but {} rank sections were found",
            tables.declared_ranks,
            app.ranks.len()
        )));
    }
    Ok(app)
}

/// Parses the text form of a reduced application trace.
pub fn parse_reduced_trace(text: &str) -> Result<ReducedAppTrace, FormatError> {
    let mut lines = Lines::new(text);
    expect_magic(&mut lines, REDUCED_HEADER)?;
    let (tables, mut pending) = parse_header(&mut lines)?;
    let mut reduced = ReducedAppTrace {
        name: tables.name.clone(),
        regions: tables.regions.clone(),
        contexts: tables.contexts.clone(),
        ranks: Vec::with_capacity(tables.declared_ranks),
    };

    loop {
        let (line_no, line) = match pending.take() {
            Some((n, l)) => (n, l),
            None => {
                let (n, l) = lines.require("RANK or END_TRACE")?;
                (n, l.to_string())
            }
        };
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("END_TRACE") => break,
            Some("RANK") => {
                let rank_id = parse_u32(line_no, tokens.next(), "rank id")?;
                let mut rank = ReducedRankTrace::new(trace_model::Rank(rank_id));
                loop {
                    let (line_no, line) = lines.require("STORED/EXEC records or END_RANK")?;
                    let mut tokens = line.split_whitespace();
                    match tokens.next() {
                        Some("END_RANK") => break,
                        Some("STORED") => {
                            let id = parse_u32(line_no, tokens.next(), "stored segment id")?;
                            if id as usize != rank.stored.len() {
                                return Err(FormatError::at(
                                    line_no,
                                    format!(
                                        "stored ids must be dense; expected {} got {id}",
                                        rank.stored.len()
                                    ),
                                ));
                            }
                            let represented =
                                parse_u32(line_no, tokens.next(), "represented count")?;
                            let context = parse_context_ref(&tables, line_no, tokens.next())?;
                            let end = parse_u64(line_no, tokens.next(), "segment end")?;
                            let n_events =
                                parse_u64(line_no, tokens.next(), "event count")? as usize;
                            let mut events = Vec::with_capacity(n_events);
                            for _ in 0..n_events {
                                let (event_line_no, event_line) = lines.require("EVENT line")?;
                                if !event_line.starts_with("EVENT") {
                                    return Err(FormatError::at(
                                        event_line_no,
                                        "expected EVENT line inside a STORED segment",
                                    ));
                                }
                                events.push(parse_event_line(&tables, event_line_no, event_line)?);
                            }
                            rank.stored.push(StoredSegment {
                                id,
                                segment: Segment {
                                    context,
                                    start: Time::ZERO,
                                    end: Time::from_nanos(end),
                                    events,
                                },
                                represented,
                            });
                        }
                        Some("EXEC") => {
                            let segment = parse_u32(line_no, tokens.next(), "stored segment id")?;
                            if segment as usize >= rank.stored.len() {
                                return Err(FormatError::at(
                                    line_no,
                                    format!(
                                        "execution references unknown stored segment {segment}"
                                    ),
                                ));
                            }
                            let start = parse_u64(line_no, tokens.next(), "execution start")?;
                            rank.execs.push(SegmentExec {
                                segment,
                                start: Time::from_nanos(start),
                            });
                        }
                        other => {
                            return Err(FormatError::at(
                                line_no,
                                format!("unexpected record {other:?} inside a rank section"),
                            ));
                        }
                    }
                }
                reduced.ranks.push(rank);
            }
            other => {
                return Err(FormatError::at(
                    line_no,
                    format!("expected RANK or END_TRACE, found {other:?}"),
                ));
            }
        }
    }

    if reduced.ranks.len() != tables.declared_ranks {
        return Err(FormatError::structural(format!(
            "header declares {} ranks but {} rank sections were found",
            tables.declared_ranks,
            reduced.ranks.len()
        )));
    }
    Ok(reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::{write_app_trace, write_reduced_trace};
    use trace_reduce::{Method, Reducer};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    #[test]
    fn app_trace_round_trips_exactly() {
        for kind in [
            WorkloadKind::LateSender,
            WorkloadKind::ImbalanceAtMpiBarrier,
            WorkloadKind::Sweep3d8p,
        ] {
            let app = Workload::new(kind, SizePreset::Tiny).generate();
            let text = write_app_trace(&app);
            let parsed = parse_app_trace(&text).expect("round trip must parse");
            assert_eq!(parsed, app, "{kind:?}");
        }
    }

    #[test]
    fn reduced_trace_round_trips_exactly() {
        let app = Workload::new(WorkloadKind::EarlyGather, SizePreset::Tiny).generate();
        for method in [Method::AvgWave, Method::IterK, Method::RelDiff] {
            let reduced = Reducer::with_default_threshold(method).reduce_app(&app);
            let text = write_reduced_trace(&reduced);
            let parsed = parse_reduced_trace(&text).expect("round trip must parse");
            assert_eq!(parsed, reduced, "{method}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);
        let commented: String = text
            .lines()
            .flat_map(|l| [l, "", "# a comment"])
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = parse_app_trace(&commented).expect("comments are ignored");
        assert_eq!(parsed, app);
    }

    #[test]
    fn wrong_header_is_rejected_with_line_number() {
        let err = parse_app_trace("BOGUS 9\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_reduced_trace("TRACEFORMAT 1\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn truncated_input_reports_a_structural_error() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);
        let truncated: String = text.lines().take(10).collect::<Vec<_>>().join("\n");
        let err = parse_app_trace(&truncated).unwrap_err();
        assert_eq!(err.line, 0, "end-of-input errors are structural: {err}");
    }

    #[test]
    fn malformed_records_are_rejected_with_their_line() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);

        // Corrupt the first EVENT line's region id into a huge number.
        let corrupted: Vec<String> = text
            .lines()
            .map(|l| {
                if l.starts_with("EVENT") {
                    let mut parts: Vec<&str> = l.split_whitespace().collect();
                    parts[1] = "9999";
                    parts.join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect();
        let err = parse_app_trace(&corrupted.join("\n")).unwrap_err();
        assert!(err.line > 0);
        assert!(err.message.contains("unknown region"), "{err}");
    }

    #[test]
    fn inverted_event_times_are_rejected() {
        let text = "\
TRACEFORMAT 1
TRACE RANKS 1 NAME bad
REGION 0 do_work
CONTEXT 0 main.1
RANK 0
SEG_BEGIN 0 0
EVENT 0 50 10 0 COMPUTE
SEG_END 0 60
END_RANK
END_TRACE
";
        let err = parse_app_trace(text).unwrap_err();
        assert_eq!(err.line, 7);
        assert!(err.message.contains("precedes"), "{err}");
    }

    #[test]
    fn unknown_collective_and_event_kind_are_rejected() {
        let base = "\
TRACEFORMAT 1
TRACE RANKS 1 NAME bad
REGION 0 MPI_Bcast
CONTEXT 0 main.1
RANK 0
EVENT 0 0 10 0 COLLECTIVE MPI_Bogus 0 8 64
END_RANK
END_TRACE
";
        let err = parse_app_trace(base).unwrap_err();
        assert!(err.message.contains("unknown collective"), "{err}");

        let bad_kind = base.replace("COLLECTIVE MPI_Bogus 0 8 64", "TELEPORT 1 2 3");
        let err = parse_app_trace(&bad_kind).unwrap_err();
        assert!(err.message.contains("unknown event kind"), "{err}");
    }

    #[test]
    fn rank_count_mismatch_is_detected() {
        let text = "\
TRACEFORMAT 1
TRACE RANKS 2 NAME short
REGION 0 do_work
CONTEXT 0 main.1
RANK 0
END_RANK
END_TRACE
";
        let err = parse_app_trace(text).unwrap_err();
        assert!(err.message.contains("rank sections"), "{err}");
    }

    #[test]
    fn exec_referencing_unknown_stored_segment_is_rejected() {
        let text = "\
TRACEFORMAT_REDUCED 1
TRACE RANKS 1 NAME bad
REGION 0 do_work
CONTEXT 0 main.1
RANK 0
EXEC 3 100
END_RANK
END_TRACE
";
        let err = parse_reduced_trace(text).unwrap_err();
        assert!(err.message.contains("unknown stored segment"), "{err}");
    }

    #[test]
    fn region_ids_must_be_dense() {
        let text = "\
TRACEFORMAT 1
TRACE RANKS 0 NAME sparse
REGION 0 a
REGION 2 b
END_TRACE
";
        let err = parse_app_trace(text).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("dense"), "{err}");
    }
}
