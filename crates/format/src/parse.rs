//! Parsers for the text trace format.

use trace_model::{
    AppTrace, CollectiveOp, CommInfo, ContextId, ContextTable, Duration, Event, Rank, RankTrace,
    ReducedAppTrace, ReducedRankTrace, RegionId, RegionTable, Segment, SegmentExec, StoredSegment,
    Time,
};

use crate::error::FormatError;
use crate::write::{APP_HEADER, REDUCED_HEADER};

/// A line with its 1-based number, with blank and comment lines skipped.
struct Lines<'a> {
    inner: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Lines {
            inner: text.lines().enumerate(),
        }
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        for (index, line) in self.inner.by_ref() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Some((index + 1, trimmed));
        }
        None
    }

    fn expect(&mut self, what: &str) -> Result<(usize, &'a str), FormatError> {
        self.next().ok_or_else(|| {
            FormatError::structural(format!("unexpected end of input, expected {what}"))
        })
    }
}

fn parse_u64(line: usize, token: Option<&str>, what: &str) -> Result<u64, FormatError> {
    let token = token.ok_or_else(|| FormatError::at(line, format!("missing {what}")))?;
    token
        .parse::<u64>()
        .map_err(|_| FormatError::at(line, format!("invalid {what}: {token:?}")))
}

fn parse_u32(line: usize, token: Option<&str>, what: &str) -> Result<u32, FormatError> {
    Ok(parse_u64(line, token, what)? as u32)
}

fn collective_op(line: usize, name: &str) -> Result<CollectiveOp, FormatError> {
    CollectiveOp::ALL
        .into_iter()
        .find(|op| op.mpi_name() == name)
        .ok_or_else(|| FormatError::at(line, format!("unknown collective operation {name:?}")))
}

/// Shared header: `TRACE RANKS <n> NAME <name>` plus REGION/CONTEXT tables.
struct Header {
    name: String,
    ranks: usize,
    regions: RegionTable,
    contexts: ContextTable,
    /// First non-table line (already consumed from the iterator) to be
    /// processed by the caller.
    pending: Option<(usize, String)>,
}

fn parse_header(lines: &mut Lines<'_>) -> Result<Header, FormatError> {
    let (line_no, line) = lines.expect("TRACE line")?;
    let mut tokens = line.split_whitespace();
    if tokens.next() != Some("TRACE") || tokens.next() != Some("RANKS") {
        return Err(FormatError::at(
            line_no,
            "expected `TRACE RANKS <n> NAME <name>`",
        ));
    }
    let ranks = parse_u64(line_no, tokens.next(), "rank count")? as usize;
    if tokens.next() != Some("NAME") {
        return Err(FormatError::at(
            line_no,
            "expected NAME after the rank count",
        ));
    }
    // The name is everything after the literal ` NAME ` marker; a missing
    // remainder (empty program name) is tolerated.
    let name = line
        .find(" NAME ")
        .map(|idx| line[idx + " NAME ".len()..].to_string())
        .unwrap_or_default();

    let mut region_names: Vec<String> = Vec::new();
    let mut context_names: Vec<String> = Vec::new();
    let pending;
    loop {
        let (line_no, line) = lines.expect("REGION/CONTEXT table or rank data")?;
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("REGION") => {
                let id = parse_u64(line_no, tokens.next(), "region id")? as usize;
                if id != region_names.len() {
                    return Err(FormatError::at(
                        line_no,
                        format!(
                            "region ids must be dense and ascending; expected {} got {id}",
                            region_names.len()
                        ),
                    ));
                }
                let rest = line
                    .splitn(3, char::is_whitespace)
                    .nth(2)
                    .unwrap_or("")
                    .to_string();
                if rest.is_empty() {
                    return Err(FormatError::at(line_no, "missing region name"));
                }
                region_names.push(rest);
            }
            Some("CONTEXT") => {
                let id = parse_u64(line_no, tokens.next(), "context id")? as usize;
                if id != context_names.len() {
                    return Err(FormatError::at(
                        line_no,
                        format!(
                            "context ids must be dense and ascending; expected {} got {id}",
                            context_names.len()
                        ),
                    ));
                }
                let rest = line
                    .splitn(3, char::is_whitespace)
                    .nth(2)
                    .unwrap_or("")
                    .to_string();
                if rest.is_empty() {
                    return Err(FormatError::at(line_no, "missing context name"));
                }
                context_names.push(rest);
            }
            _ => {
                pending = Some((line_no, line.to_string()));
                break;
            }
        }
    }

    Ok(Header {
        name,
        ranks,
        regions: RegionTable::from_names(region_names),
        contexts: ContextTable::from_names(context_names),
        pending,
    })
}

/// Parses one `EVENT …` line against the header's tables.
fn parse_event(header: &Header, line_no: usize, line: &str) -> Result<Event, FormatError> {
    let mut tokens = line.split_whitespace();
    let keyword = tokens.next();
    debug_assert_eq!(keyword, Some("EVENT"), "callers only pass EVENT lines");
    let region = parse_u32(line_no, tokens.next(), "region id")?;
    if (region as usize) >= header.regions.len() {
        return Err(FormatError::at(
            line_no,
            format!("event references unknown region {region}"),
        ));
    }
    let start = parse_u64(line_no, tokens.next(), "event start")?;
    let end = parse_u64(line_no, tokens.next(), "event end")?;
    if end < start {
        return Err(FormatError::at(
            line_no,
            format!("event end {end} precedes start {start}"),
        ));
    }
    let wait = parse_u64(line_no, tokens.next(), "event wait time")?;
    let kind = tokens
        .next()
        .ok_or_else(|| FormatError::at(line_no, "missing event kind"))?;
    let comm = match kind {
        "COMPUTE" => CommInfo::Compute,
        "SEND" => CommInfo::Send {
            peer: Rank(parse_u32(line_no, tokens.next(), "peer rank")?),
            tag: parse_u32(line_no, tokens.next(), "tag")?,
            bytes: parse_u64(line_no, tokens.next(), "byte count")?,
        },
        "RECV" => CommInfo::Recv {
            peer: Rank(parse_u32(line_no, tokens.next(), "peer rank")?),
            tag: parse_u32(line_no, tokens.next(), "tag")?,
            bytes: parse_u64(line_no, tokens.next(), "byte count")?,
        },
        "SENDRECV" => CommInfo::SendRecv {
            to: Rank(parse_u32(line_no, tokens.next(), "destination rank")?),
            from: Rank(parse_u32(line_no, tokens.next(), "source rank")?),
            tag: parse_u32(line_no, tokens.next(), "tag")?,
            bytes: parse_u64(line_no, tokens.next(), "byte count")?,
        },
        "COLLECTIVE" => {
            let op_name = tokens
                .next()
                .ok_or_else(|| FormatError::at(line_no, "missing collective operation name"))?;
            CommInfo::Collective {
                op: collective_op(line_no, op_name)?,
                root: Rank(parse_u32(line_no, tokens.next(), "root rank")?),
                comm_size: parse_u32(line_no, tokens.next(), "communicator size")?,
                bytes: parse_u64(line_no, tokens.next(), "byte count")?,
            }
        }
        other => {
            return Err(FormatError::at(
                line_no,
                format!("unknown event kind {other:?}"),
            ));
        }
    };
    Ok(Event {
        region: RegionId(region),
        start: Time::from_nanos(start),
        end: Time::from_nanos(end),
        comm,
        wait: Duration::from_nanos(wait),
    })
}

fn parse_context_ref(
    header: &Header,
    line_no: usize,
    token: Option<&str>,
) -> Result<ContextId, FormatError> {
    let id = parse_u32(line_no, token, "context id")?;
    if (id as usize) >= header.contexts.len() {
        return Err(FormatError::at(line_no, format!("unknown context id {id}")));
    }
    Ok(ContextId(id))
}

/// Parses the text form of a full application trace.
pub fn parse_app_trace(text: &str) -> Result<AppTrace, FormatError> {
    let mut lines = Lines::new(text);
    let (line_no, first) = lines.expect("header")?;
    if first != APP_HEADER {
        return Err(FormatError::at(
            line_no,
            format!("expected header {APP_HEADER:?}, found {first:?}"),
        ));
    }
    let header = parse_header(&mut lines)?;
    let mut app = AppTrace {
        name: header.name.clone(),
        regions: header.regions.clone(),
        contexts: header.contexts.clone(),
        ranks: Vec::with_capacity(header.ranks),
    };

    let mut pending = header.pending.clone();
    loop {
        let (line_no, line) = match pending.take() {
            Some((n, l)) => (n, l),
            None => {
                let (n, l) = lines.expect("RANK or END_TRACE")?;
                (n, l.to_string())
            }
        };
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("END_TRACE") => break,
            Some("RANK") => {
                let rank_id = parse_u32(line_no, tokens.next(), "rank id")?;
                let mut rank = RankTrace::new(Rank(rank_id));
                loop {
                    let (line_no, line) = lines.expect("rank records or END_RANK")?;
                    let mut tokens = line.split_whitespace();
                    match tokens.next() {
                        Some("END_RANK") => break,
                        Some("SEG_BEGIN") => {
                            let context = parse_context_ref(&header, line_no, tokens.next())?;
                            let time = parse_u64(line_no, tokens.next(), "time stamp")?;
                            rank.begin_segment(context, Time::from_nanos(time));
                        }
                        Some("SEG_END") => {
                            let context = parse_context_ref(&header, line_no, tokens.next())?;
                            let time = parse_u64(line_no, tokens.next(), "time stamp")?;
                            rank.end_segment(context, Time::from_nanos(time));
                        }
                        Some("EVENT") => {
                            rank.push_event(parse_event(&header, line_no, line)?);
                        }
                        other => {
                            return Err(FormatError::at(
                                line_no,
                                format!("unexpected record {other:?} inside a rank section"),
                            ));
                        }
                    }
                }
                app.ranks.push(rank);
            }
            other => {
                return Err(FormatError::at(
                    line_no,
                    format!("expected RANK or END_TRACE, found {other:?}"),
                ));
            }
        }
    }

    if app.ranks.len() != header.ranks {
        return Err(FormatError::structural(format!(
            "header declares {} ranks but {} rank sections were found",
            header.ranks,
            app.ranks.len()
        )));
    }
    Ok(app)
}

/// Parses the text form of a reduced application trace.
pub fn parse_reduced_trace(text: &str) -> Result<ReducedAppTrace, FormatError> {
    let mut lines = Lines::new(text);
    let (line_no, first) = lines.expect("header")?;
    if first != REDUCED_HEADER {
        return Err(FormatError::at(
            line_no,
            format!("expected header {REDUCED_HEADER:?}, found {first:?}"),
        ));
    }
    let header = parse_header(&mut lines)?;
    let mut reduced = ReducedAppTrace {
        name: header.name.clone(),
        regions: header.regions.clone(),
        contexts: header.contexts.clone(),
        ranks: Vec::with_capacity(header.ranks),
    };

    let mut pending = header.pending.clone();
    loop {
        let (line_no, line) = match pending.take() {
            Some((n, l)) => (n, l),
            None => {
                let (n, l) = lines.expect("RANK or END_TRACE")?;
                (n, l.to_string())
            }
        };
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("END_TRACE") => break,
            Some("RANK") => {
                let rank_id = parse_u32(line_no, tokens.next(), "rank id")?;
                let mut rank = ReducedRankTrace::new(Rank(rank_id));
                loop {
                    let (line_no, line) = lines.expect("STORED/EXEC records or END_RANK")?;
                    let mut tokens = line.split_whitespace();
                    match tokens.next() {
                        Some("END_RANK") => break,
                        Some("STORED") => {
                            let id = parse_u32(line_no, tokens.next(), "stored segment id")?;
                            if id as usize != rank.stored.len() {
                                return Err(FormatError::at(
                                    line_no,
                                    format!(
                                        "stored ids must be dense; expected {} got {id}",
                                        rank.stored.len()
                                    ),
                                ));
                            }
                            let represented =
                                parse_u32(line_no, tokens.next(), "represented count")?;
                            let context = parse_context_ref(&header, line_no, tokens.next())?;
                            let end = parse_u64(line_no, tokens.next(), "segment end")?;
                            let n_events =
                                parse_u64(line_no, tokens.next(), "event count")? as usize;
                            let mut events = Vec::with_capacity(n_events);
                            for _ in 0..n_events {
                                let (event_line_no, event_line) = lines.expect("EVENT line")?;
                                if !event_line.starts_with("EVENT") {
                                    return Err(FormatError::at(
                                        event_line_no,
                                        "expected EVENT line inside a STORED segment",
                                    ));
                                }
                                events.push(parse_event(&header, event_line_no, event_line)?);
                            }
                            rank.stored.push(StoredSegment {
                                id,
                                segment: Segment {
                                    context,
                                    start: Time::ZERO,
                                    end: Time::from_nanos(end),
                                    events,
                                },
                                represented,
                            });
                        }
                        Some("EXEC") => {
                            let segment = parse_u32(line_no, tokens.next(), "stored segment id")?;
                            if segment as usize >= rank.stored.len() {
                                return Err(FormatError::at(
                                    line_no,
                                    format!(
                                        "execution references unknown stored segment {segment}"
                                    ),
                                ));
                            }
                            let start = parse_u64(line_no, tokens.next(), "execution start")?;
                            rank.execs.push(SegmentExec {
                                segment,
                                start: Time::from_nanos(start),
                            });
                        }
                        other => {
                            return Err(FormatError::at(
                                line_no,
                                format!("unexpected record {other:?} inside a rank section"),
                            ));
                        }
                    }
                }
                reduced.ranks.push(rank);
            }
            other => {
                return Err(FormatError::at(
                    line_no,
                    format!("expected RANK or END_TRACE, found {other:?}"),
                ));
            }
        }
    }

    if reduced.ranks.len() != header.ranks {
        return Err(FormatError::structural(format!(
            "header declares {} ranks but {} rank sections were found",
            header.ranks,
            reduced.ranks.len()
        )));
    }
    Ok(reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::{write_app_trace, write_reduced_trace};
    use trace_reduce::{Method, Reducer};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    #[test]
    fn app_trace_round_trips_exactly() {
        for kind in [
            WorkloadKind::LateSender,
            WorkloadKind::ImbalanceAtMpiBarrier,
            WorkloadKind::Sweep3d8p,
        ] {
            let app = Workload::new(kind, SizePreset::Tiny).generate();
            let text = write_app_trace(&app);
            let parsed = parse_app_trace(&text).expect("round trip must parse");
            assert_eq!(parsed, app, "{kind:?}");
        }
    }

    #[test]
    fn reduced_trace_round_trips_exactly() {
        let app = Workload::new(WorkloadKind::EarlyGather, SizePreset::Tiny).generate();
        for method in [Method::AvgWave, Method::IterK, Method::RelDiff] {
            let reduced = Reducer::with_default_threshold(method).reduce_app(&app);
            let text = write_reduced_trace(&reduced);
            let parsed = parse_reduced_trace(&text).expect("round trip must parse");
            assert_eq!(parsed, reduced, "{method}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);
        let commented: String = text
            .lines()
            .flat_map(|l| [l, "", "# a comment"])
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = parse_app_trace(&commented).expect("comments are ignored");
        assert_eq!(parsed, app);
    }

    #[test]
    fn wrong_header_is_rejected_with_line_number() {
        let err = parse_app_trace("BOGUS 9\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_reduced_trace("TRACEFORMAT 1\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn truncated_input_reports_a_structural_error() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);
        let truncated: String = text.lines().take(10).collect::<Vec<_>>().join("\n");
        let err = parse_app_trace(&truncated).unwrap_err();
        assert_eq!(err.line, 0, "end-of-input errors are structural: {err}");
    }

    #[test]
    fn malformed_records_are_rejected_with_their_line() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);

        // Corrupt the first EVENT line's region id into a huge number.
        let corrupted: Vec<String> = text
            .lines()
            .map(|l| {
                if l.starts_with("EVENT") {
                    let mut parts: Vec<&str> = l.split_whitespace().collect();
                    parts[1] = "9999";
                    parts.join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect();
        let err = parse_app_trace(&corrupted.join("\n")).unwrap_err();
        assert!(err.line > 0);
        assert!(err.message.contains("unknown region"), "{err}");
    }

    #[test]
    fn inverted_event_times_are_rejected() {
        let text = "\
TRACEFORMAT 1
TRACE RANKS 1 NAME bad
REGION 0 do_work
CONTEXT 0 main.1
RANK 0
SEG_BEGIN 0 0
EVENT 0 50 10 0 COMPUTE
SEG_END 0 60
END_RANK
END_TRACE
";
        let err = parse_app_trace(text).unwrap_err();
        assert_eq!(err.line, 7);
        assert!(err.message.contains("precedes"), "{err}");
    }

    #[test]
    fn unknown_collective_and_event_kind_are_rejected() {
        let base = "\
TRACEFORMAT 1
TRACE RANKS 1 NAME bad
REGION 0 MPI_Bcast
CONTEXT 0 main.1
RANK 0
EVENT 0 0 10 0 COLLECTIVE MPI_Bogus 0 8 64
END_RANK
END_TRACE
";
        let err = parse_app_trace(base).unwrap_err();
        assert!(err.message.contains("unknown collective"), "{err}");

        let bad_kind = base.replace("COLLECTIVE MPI_Bogus 0 8 64", "TELEPORT 1 2 3");
        let err = parse_app_trace(&bad_kind).unwrap_err();
        assert!(err.message.contains("unknown event kind"), "{err}");
    }

    #[test]
    fn rank_count_mismatch_is_detected() {
        let text = "\
TRACEFORMAT 1
TRACE RANKS 2 NAME short
REGION 0 do_work
CONTEXT 0 main.1
RANK 0
END_RANK
END_TRACE
";
        let err = parse_app_trace(text).unwrap_err();
        assert!(err.message.contains("rank sections"), "{err}");
    }

    #[test]
    fn exec_referencing_unknown_stored_segment_is_rejected() {
        let text = "\
TRACEFORMAT_REDUCED 1
TRACE RANKS 1 NAME bad
REGION 0 do_work
CONTEXT 0 main.1
RANK 0
EXEC 3 100
END_RANK
END_TRACE
";
        let err = parse_reduced_trace(text).unwrap_err();
        assert!(err.message.contains("unknown stored segment"), "{err}");
    }

    #[test]
    fn region_ids_must_be_dense() {
        let text = "\
TRACEFORMAT 1
TRACE RANKS 0 NAME sparse
REGION 0 a
REGION 2 b
END_TRACE
";
        let err = parse_app_trace(text).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("dense"), "{err}");
    }
}
