//! Writers for the text trace format.
//!
//! Two styles are provided:
//!
//! * whole-trace convenience functions ([`write_app_trace`],
//!   [`write_reduced_trace`]) that serialize an in-memory trace to a
//!   `String`, and their [`std::io::Write`] counterparts
//!   ([`write_app_trace_to`], [`write_reduced_trace_to`]);
//! * an incremental [`AppTraceTextWriter`] that emits a full-trace file
//!   record by record, so producers (e.g. the workload simulator) can
//!   stream a trace to disk without ever holding its text in memory.

use std::io::{self, Write};

use trace_model::{AppTrace, CommInfo, Event, Rank, ReducedAppTrace, TraceRecord};

/// Magic first line of a full-trace file.
pub const APP_HEADER: &str = "TRACEFORMAT 1";
/// Magic first line of a reduced-trace file.
pub const REDUCED_HEADER: &str = "TRACEFORMAT_REDUCED 1";

fn write_tables<W: Write>(
    out: &mut W,
    app_name: &str,
    ranks: usize,
    regions: &[String],
    contexts: &[String],
) -> io::Result<()> {
    writeln!(out, "TRACE RANKS {ranks} NAME {app_name}")?;
    for (id, name) in regions.iter().enumerate() {
        writeln!(out, "REGION {id} {name}")?;
    }
    for (id, name) in contexts.iter().enumerate() {
        writeln!(out, "CONTEXT {id} {name}")?;
    }
    Ok(())
}

fn write_event<W: Write>(out: &mut W, event: &Event) -> io::Result<()> {
    write!(
        out,
        "EVENT {} {} {} {}",
        event.region.as_u32(),
        event.start.as_nanos(),
        event.end.as_nanos(),
        event.wait.as_nanos()
    )?;
    match event.comm {
        CommInfo::Compute => writeln!(out, " COMPUTE"),
        CommInfo::Send { peer, tag, bytes } => {
            writeln!(out, " SEND {} {tag} {bytes}", peer.as_u32())
        }
        CommInfo::Recv { peer, tag, bytes } => {
            writeln!(out, " RECV {} {tag} {bytes}", peer.as_u32())
        }
        CommInfo::SendRecv {
            to,
            from,
            tag,
            bytes,
        } => writeln!(
            out,
            " SENDRECV {} {} {tag} {bytes}",
            to.as_u32(),
            from.as_u32()
        ),
        CommInfo::Collective {
            op,
            root,
            comm_size,
            bytes,
        } => writeln!(
            out,
            " COLLECTIVE {} {} {comm_size} {bytes}",
            op.mpi_name(),
            root.as_u32()
        ),
    }
}

fn write_record<W: Write>(out: &mut W, record: &TraceRecord) -> io::Result<()> {
    match record {
        TraceRecord::SegmentBegin { context, time } => {
            writeln!(out, "SEG_BEGIN {} {}", context.as_u32(), time.as_nanos())
        }
        TraceRecord::SegmentEnd { context, time } => {
            writeln!(out, "SEG_END {} {}", context.as_u32(), time.as_nanos())
        }
        TraceRecord::Event(event) => write_event(out, event),
    }
}

/// Incremental text writer for a full application trace.
///
/// The header (magic line, `TRACE` line, REGION/CONTEXT tables) is written
/// up front; rank sections are then emitted record by record.  The writer
/// tracks how many rank sections were written and refuses to finish unless
/// it matches the declared count, so a streamed file is always parseable.
pub struct AppTraceTextWriter<W: Write> {
    out: W,
    declared_ranks: usize,
    ranks_written: usize,
    in_rank: bool,
}

impl<W: Write> AppTraceTextWriter<W> {
    /// Writes the file header and tables, ready for rank sections.
    pub fn new(
        mut out: W,
        app_name: &str,
        declared_ranks: usize,
        regions: &[String],
        contexts: &[String],
    ) -> io::Result<Self> {
        writeln!(out, "{APP_HEADER}")?;
        write_tables(&mut out, app_name, declared_ranks, regions, contexts)?;
        Ok(AppTraceTextWriter {
            out,
            declared_ranks,
            ranks_written: 0,
            in_rank: false,
        })
    }

    /// Opens the next rank section.
    ///
    /// # Panics
    /// Panics if a rank section is already open.
    pub fn begin_rank(&mut self, rank: Rank) -> io::Result<()> {
        assert!(!self.in_rank, "previous rank section is still open");
        self.in_rank = true;
        writeln!(self.out, "RANK {}", rank.as_u32())
    }

    /// Writes one record into the open rank section.
    ///
    /// # Panics
    /// Panics if no rank section is open.
    pub fn record(&mut self, record: &TraceRecord) -> io::Result<()> {
        assert!(self.in_rank, "no open rank section");
        write_record(&mut self.out, record)
    }

    /// Closes the open rank section.
    ///
    /// # Panics
    /// Panics if no rank section is open.
    pub fn end_rank(&mut self) -> io::Result<()> {
        assert!(self.in_rank, "no open rank section");
        self.in_rank = false;
        self.ranks_written += 1;
        writeln!(self.out, "END_RANK")
    }

    /// Writes the trailer and returns the underlying writer.
    ///
    /// # Panics
    /// Panics if a rank section is still open or the number of rank
    /// sections written differs from the declared count.
    pub fn finish(mut self) -> io::Result<W> {
        assert!(!self.in_rank, "a rank section is still open");
        assert_eq!(
            self.ranks_written, self.declared_ranks,
            "declared {} ranks but wrote {}",
            self.declared_ranks, self.ranks_written
        );
        writeln!(self.out, "END_TRACE")?;
        Ok(self.out)
    }
}

/// Serializes a full application trace to the text format via `out`.
pub fn write_app_trace_to<W: Write>(out: W, app: &AppTrace) -> io::Result<W> {
    let mut writer = AppTraceTextWriter::new(
        out,
        &app.name,
        app.rank_count(),
        app.regions.names(),
        app.contexts.names(),
    )?;
    for rank in &app.ranks {
        writer.begin_rank(rank.rank)?;
        for record in &rank.records {
            writer.record(record)?;
        }
        writer.end_rank()?;
    }
    writer.finish()
}

/// Serializes a full application trace to the text format.
pub fn write_app_trace(app: &AppTrace) -> String {
    let bytes = write_app_trace_to(Vec::new(), app).expect("writing to a Vec cannot fail");
    String::from_utf8(bytes).expect("the text format is valid UTF-8")
}

/// Serializes a reduced application trace to the text format via `out`.
pub fn write_reduced_trace_to<W: Write>(mut out: W, reduced: &ReducedAppTrace) -> io::Result<W> {
    writeln!(out, "{REDUCED_HEADER}")?;
    write_tables(
        &mut out,
        &reduced.name,
        reduced.rank_count(),
        reduced.regions.names(),
        reduced.contexts.names(),
    )?;
    for rank in &reduced.ranks {
        writeln!(out, "RANK {}", rank.rank.as_u32())?;
        for stored in &rank.stored {
            writeln!(
                out,
                "STORED {} {} {} {} {}",
                stored.id,
                stored.represented,
                stored.segment.context.as_u32(),
                stored.segment.end.as_nanos(),
                stored.segment.events.len()
            )?;
            for event in &stored.segment.events {
                write_event(&mut out, event)?;
            }
        }
        for exec in &rank.execs {
            writeln!(out, "EXEC {} {}", exec.segment, exec.start.as_nanos())?;
        }
        writeln!(out, "END_RANK")?;
    }
    writeln!(out, "END_TRACE")?;
    Ok(out)
}

/// Serializes a reduced application trace to the text format.
pub fn write_reduced_trace(reduced: &ReducedAppTrace) -> String {
    let bytes = write_reduced_trace_to(Vec::new(), reduced).expect("writing to a Vec cannot fail");
    String::from_utf8(bytes).expect("the text format is valid UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_app_trace;
    use trace_reduce::{Method, Reducer};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    #[test]
    fn app_trace_output_has_header_tables_and_trailer() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(APP_HEADER));
        assert!(text.contains("TRACE RANKS"));
        assert!(text.contains("REGION 0 "));
        assert!(text.contains("CONTEXT 0 "));
        assert!(text.ends_with("END_TRACE\n"));
        assert_eq!(
            text.matches("RANK ").count(),
            app.rank_count(),
            "one RANK header per rank"
        );
        assert_eq!(text.matches("END_RANK").count(), app.rank_count());
    }

    #[test]
    fn every_event_kind_is_written_with_its_parameters() {
        let app = Workload::new(WorkloadKind::ImbalanceAtMpiBarrier, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);
        assert!(text.contains(" COLLECTIVE MPI_Barrier"));
        assert!(text.contains(" COMPUTE"));
        let p2p = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let p2p_text = write_app_trace(&p2p);
        assert!(p2p_text.contains(" SEND ") || p2p_text.contains(" RECV "));
    }

    #[test]
    fn reduced_trace_output_lists_stored_segments_and_execs() {
        let app = Workload::new(WorkloadKind::EarlyGather, SizePreset::Tiny).generate();
        let reduced = Reducer::with_default_threshold(Method::AvgWave).reduce_app(&app);
        let text = write_reduced_trace(&reduced);
        assert!(text.starts_with(REDUCED_HEADER));
        assert_eq!(text.matches("STORED ").count(), reduced.total_stored());
        assert_eq!(text.matches("EXEC ").count(), reduced.total_execs());
        assert!(text.ends_with("END_TRACE\n"));
    }

    #[test]
    fn incremental_writer_matches_whole_trace_writer() {
        let app = Workload::new(WorkloadKind::EarlyGather, SizePreset::Tiny).generate();
        let mut writer = AppTraceTextWriter::new(
            Vec::new(),
            &app.name,
            app.rank_count(),
            app.regions.names(),
            app.contexts.names(),
        )
        .unwrap();
        for rank in &app.ranks {
            writer.begin_rank(rank.rank).unwrap();
            for record in &rank.records {
                writer.record(record).unwrap();
            }
            writer.end_rank().unwrap();
        }
        let bytes = writer.finish().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), write_app_trace(&app));
    }

    #[test]
    fn io_writers_round_trip_through_the_parser() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let bytes = write_app_trace_to(Vec::new(), &app).unwrap();
        let parsed = parse_app_trace(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(parsed, app);
    }

    #[test]
    #[should_panic(expected = "declared 3 ranks but wrote 0")]
    fn incremental_writer_enforces_the_declared_rank_count() {
        let writer = AppTraceTextWriter::new(Vec::new(), "x", 3, &[], &[]).unwrap();
        let _ = writer.finish();
    }
}
