//! Writers for the text trace format.

use std::fmt::Write as _;

use trace_model::{AppTrace, CommInfo, Event, ReducedAppTrace, TraceRecord};

/// Magic first line of a full-trace file.
pub const APP_HEADER: &str = "TRACEFORMAT 1";
/// Magic first line of a reduced-trace file.
pub const REDUCED_HEADER: &str = "TRACEFORMAT_REDUCED 1";

fn write_tables(
    out: &mut String,
    app_name: &str,
    ranks: usize,
    regions: &[String],
    contexts: &[String],
) {
    let _ = writeln!(out, "TRACE RANKS {ranks} NAME {app_name}");
    for (id, name) in regions.iter().enumerate() {
        let _ = writeln!(out, "REGION {id} {name}");
    }
    for (id, name) in contexts.iter().enumerate() {
        let _ = writeln!(out, "CONTEXT {id} {name}");
    }
}

fn write_event(out: &mut String, event: &Event) {
    let _ = write!(
        out,
        "EVENT {} {} {} {}",
        event.region.as_u32(),
        event.start.as_nanos(),
        event.end.as_nanos(),
        event.wait.as_nanos()
    );
    match event.comm {
        CommInfo::Compute => {
            let _ = writeln!(out, " COMPUTE");
        }
        CommInfo::Send { peer, tag, bytes } => {
            let _ = writeln!(out, " SEND {} {tag} {bytes}", peer.as_u32());
        }
        CommInfo::Recv { peer, tag, bytes } => {
            let _ = writeln!(out, " RECV {} {tag} {bytes}", peer.as_u32());
        }
        CommInfo::SendRecv {
            to,
            from,
            tag,
            bytes,
        } => {
            let _ = writeln!(
                out,
                " SENDRECV {} {} {tag} {bytes}",
                to.as_u32(),
                from.as_u32()
            );
        }
        CommInfo::Collective {
            op,
            root,
            comm_size,
            bytes,
        } => {
            let _ = writeln!(
                out,
                " COLLECTIVE {} {} {comm_size} {bytes}",
                op.mpi_name(),
                root.as_u32()
            );
        }
    }
}

/// Serializes a full application trace to the text format.
pub fn write_app_trace(app: &AppTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{APP_HEADER}");
    write_tables(
        &mut out,
        &app.name,
        app.rank_count(),
        app.regions.names(),
        app.contexts.names(),
    );
    for rank in &app.ranks {
        let _ = writeln!(out, "RANK {}", rank.rank.as_u32());
        for record in &rank.records {
            match record {
                TraceRecord::SegmentBegin { context, time } => {
                    let _ = writeln!(out, "SEG_BEGIN {} {}", context.as_u32(), time.as_nanos());
                }
                TraceRecord::SegmentEnd { context, time } => {
                    let _ = writeln!(out, "SEG_END {} {}", context.as_u32(), time.as_nanos());
                }
                TraceRecord::Event(event) => write_event(&mut out, event),
            }
        }
        let _ = writeln!(out, "END_RANK");
    }
    let _ = writeln!(out, "END_TRACE");
    out
}

/// Serializes a reduced application trace to the text format.
pub fn write_reduced_trace(reduced: &ReducedAppTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{REDUCED_HEADER}");
    write_tables(
        &mut out,
        &reduced.name,
        reduced.rank_count(),
        reduced.regions.names(),
        reduced.contexts.names(),
    );
    for rank in &reduced.ranks {
        let _ = writeln!(out, "RANK {}", rank.rank.as_u32());
        for stored in &rank.stored {
            let _ = writeln!(
                out,
                "STORED {} {} {} {} {}",
                stored.id,
                stored.represented,
                stored.segment.context.as_u32(),
                stored.segment.end.as_nanos(),
                stored.segment.events.len()
            );
            for event in &stored.segment.events {
                write_event(&mut out, event);
            }
        }
        for exec in &rank.execs {
            let _ = writeln!(out, "EXEC {} {}", exec.segment, exec.start.as_nanos());
        }
        let _ = writeln!(out, "END_RANK");
    }
    let _ = writeln!(out, "END_TRACE");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_reduce::{Method, Reducer};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    #[test]
    fn app_trace_output_has_header_tables_and_trailer() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(APP_HEADER));
        assert!(text.contains("TRACE RANKS"));
        assert!(text.contains("REGION 0 "));
        assert!(text.contains("CONTEXT 0 "));
        assert!(text.ends_with("END_TRACE\n"));
        assert_eq!(
            text.matches("RANK ").count(),
            app.rank_count(),
            "one RANK header per rank"
        );
        assert_eq!(text.matches("END_RANK").count(), app.rank_count());
    }

    #[test]
    fn every_event_kind_is_written_with_its_parameters() {
        let app = Workload::new(WorkloadKind::ImbalanceAtMpiBarrier, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);
        assert!(text.contains(" COLLECTIVE MPI_Barrier"));
        assert!(text.contains(" COMPUTE"));
        let p2p = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let p2p_text = write_app_trace(&p2p);
        assert!(p2p_text.contains(" SEND ") || p2p_text.contains(" RECV "));
    }

    #[test]
    fn reduced_trace_output_lists_stored_segments_and_execs() {
        let app = Workload::new(WorkloadKind::EarlyGather, SizePreset::Tiny).generate();
        let reduced = Reducer::with_default_threshold(Method::AvgWave).reduce_app(&app);
        let text = write_reduced_trace(&reduced);
        assert!(text.starts_with(REDUCED_HEADER));
        assert_eq!(text.matches("STORED ").count(), reduced.total_stored());
        assert_eq!(text.matches("EXEC ").count(), reduced.total_execs());
        assert!(text.ends_with("END_TRACE\n"));
    }
}
