//! Line-level record parsing shared by the in-memory parser and streaming
//! consumers.
//!
//! [`crate::parse`] materializes whole traces from a `&str`; the
//! `trace_stream` crate feeds lines one at a time from a `BufRead` source.
//! Both paths go through the functions in this module, so a trace record is
//! parsed by exactly one piece of code regardless of how it arrives:
//!
//! * [`HeaderBuilder`] — an incremental state machine for the shared header
//!   (`TRACE RANKS <n> NAME <name>` plus the REGION/CONTEXT tables),
//!   producing the [`TraceTables`] every later record is validated against.
//! * [`parse_event_line`] — one `EVENT …` line.
//! * [`parse_app_body_line`] — one line of a full-trace body (`RANK`,
//!   `SEG_BEGIN`, `SEG_END`, `EVENT`, `END_RANK`, `END_TRACE`), classified
//!   as an [`AppBodyLine`].

use trace_model::{
    CollectiveOp, CommInfo, ContextId, ContextTable, Duration, Event, Rank, RegionId, RegionTable,
    Time, TraceRecord,
};

use crate::error::FormatError;

/// The metadata shared by every record of a trace file: program name,
/// declared rank count and the interned region/context name tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceTables {
    /// Human-readable name of the traced program.
    pub name: String,
    /// Number of rank sections the header declares.
    pub declared_ranks: usize,
    /// Region (function) name table.
    pub regions: RegionTable,
    /// Segment-context name table.
    pub contexts: ContextTable,
}

/// Classifies one raw input line: `Some(trimmed)` if it carries a record,
/// `None` if the line is skipped (blank or `#` comment).  Both the
/// in-memory parser and the streaming parser route every line through this
/// single rule, so the two accept exactly the same language at the line
/// level too.
pub fn meaningful_line(raw: &str) -> Option<&str> {
    let trimmed = raw.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        None
    } else {
        Some(trimmed)
    }
}

/// Parses a whitespace token as `u64`, reporting `what` on failure.
pub fn parse_u64(line: usize, token: Option<&str>, what: &str) -> Result<u64, FormatError> {
    let token = token.ok_or_else(|| FormatError::at(line, format!("missing {what}")))?;
    token
        .parse::<u64>()
        .map_err(|_| FormatError::at(line, format!("invalid {what}: {token:?}")))
}

/// Parses a whitespace token as `u32`, reporting `what` on failure.
pub fn parse_u32(line: usize, token: Option<&str>, what: &str) -> Result<u32, FormatError> {
    Ok(parse_u64(line, token, what)? as u32)
}

fn collective_op(line: usize, name: &str) -> Result<CollectiveOp, FormatError> {
    CollectiveOp::ALL
        .into_iter()
        .find(|op| op.mpi_name() == name)
        .ok_or_else(|| FormatError::at(line, format!("unknown collective operation {name:?}")))
}

/// Incremental parser for the shared trace header.
///
/// Feed it (blank/comment-stripped) lines one at a time: it consumes the
/// `TRACE` line and the REGION/CONTEXT table lines and reports the first
/// line that belongs to the trace body, at which point [`HeaderBuilder::finish`]
/// yields the [`TraceTables`].  The reporting is pull-free so both the
/// in-memory parser and a `BufRead`-driven stream parser can drive it.
#[derive(Debug, Default)]
pub struct HeaderBuilder {
    saw_trace_line: bool,
    name: String,
    ranks: usize,
    region_names: Vec<String>,
    context_names: Vec<String>,
}

impl HeaderBuilder {
    /// Creates an empty builder expecting the `TRACE` line first.
    pub fn new() -> Self {
        HeaderBuilder::default()
    }

    /// What the builder expects next, for end-of-input error messages.
    pub fn expecting(&self) -> &'static str {
        if self.saw_trace_line {
            "REGION/CONTEXT table or rank data"
        } else {
            "TRACE line"
        }
    }

    /// Feeds one line.  Returns `true` if the line was part of the header
    /// (and consumed), `false` if the header is complete and the line must
    /// be re-processed by the caller as a body record.
    pub fn feed(&mut self, line_no: usize, line: &str) -> Result<bool, FormatError> {
        let mut tokens = line.split_whitespace();
        if !self.saw_trace_line {
            if tokens.next() != Some("TRACE") || tokens.next() != Some("RANKS") {
                return Err(FormatError::at(
                    line_no,
                    "expected `TRACE RANKS <n> NAME <name>`",
                ));
            }
            self.ranks = parse_u64(line_no, tokens.next(), "rank count")? as usize;
            if tokens.next() != Some("NAME") {
                return Err(FormatError::at(
                    line_no,
                    "expected NAME after the rank count",
                ));
            }
            // The name is everything after the literal ` NAME ` marker; a
            // missing remainder (empty program name) is tolerated.
            self.name = line
                .split_once(" NAME ")
                .map(|(_, rest)| rest.to_string())
                .unwrap_or_default();
            self.saw_trace_line = true;
            return Ok(true);
        }
        match tokens.next() {
            Some("REGION") => {
                let name = Self::table_entry(line_no, line, tokens.next(), &self.region_names)?;
                self.region_names.push(name);
                Ok(true)
            }
            Some("CONTEXT") => {
                let name = Self::table_entry(line_no, line, tokens.next(), &self.context_names)?;
                self.context_names.push(name);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Validates one REGION/CONTEXT line against the table built so far and
    /// returns the entry's name.
    fn table_entry(
        line_no: usize,
        line: &str,
        id_token: Option<&str>,
        existing: &[String],
    ) -> Result<String, FormatError> {
        let kind = if line.starts_with("REGION") {
            "region"
        } else {
            "context"
        };
        let id = parse_u64(line_no, id_token, &format!("{kind} id"))? as usize;
        if id != existing.len() {
            return Err(FormatError::at(
                line_no,
                format!(
                    "{kind} ids must be dense and ascending; expected {} got {id}",
                    existing.len()
                ),
            ));
        }
        let rest = line
            .splitn(3, char::is_whitespace)
            .nth(2)
            .unwrap_or("")
            .to_string();
        if rest.is_empty() {
            return Err(FormatError::at(line_no, format!("missing {kind} name")));
        }
        Ok(rest)
    }

    /// Completes the header, yielding the tables every later record is
    /// validated against.  Errors if the `TRACE` line was never seen.
    pub fn finish(self) -> Result<TraceTables, FormatError> {
        if !self.saw_trace_line {
            return Err(FormatError::structural(
                "unexpected end of input, expected TRACE line",
            ));
        }
        Ok(TraceTables {
            name: self.name,
            declared_ranks: self.ranks,
            regions: RegionTable::from_names(self.region_names),
            contexts: ContextTable::from_names(self.context_names),
        })
    }
}

/// Parses one `EVENT …` line against the tables.
pub fn parse_event_line(
    tables: &TraceTables,
    line_no: usize,
    line: &str,
) -> Result<Event, FormatError> {
    let mut tokens = line.split_whitespace();
    let keyword = tokens.next();
    debug_assert_eq!(keyword, Some("EVENT"), "callers only pass EVENT lines");
    let region = parse_u32(line_no, tokens.next(), "region id")?;
    if (region as usize) >= tables.regions.len() {
        return Err(FormatError::at(
            line_no,
            format!("event references unknown region {region}"),
        ));
    }
    let start = parse_u64(line_no, tokens.next(), "event start")?;
    let end = parse_u64(line_no, tokens.next(), "event end")?;
    if end < start {
        return Err(FormatError::at(
            line_no,
            format!("event end {end} precedes start {start}"),
        ));
    }
    let wait = parse_u64(line_no, tokens.next(), "event wait time")?;
    let kind = tokens
        .next()
        .ok_or_else(|| FormatError::at(line_no, "missing event kind"))?;
    let comm = match kind {
        "COMPUTE" => CommInfo::Compute,
        "SEND" => CommInfo::Send {
            peer: Rank(parse_u32(line_no, tokens.next(), "peer rank")?),
            tag: parse_u32(line_no, tokens.next(), "tag")?,
            bytes: parse_u64(line_no, tokens.next(), "byte count")?,
        },
        "RECV" => CommInfo::Recv {
            peer: Rank(parse_u32(line_no, tokens.next(), "peer rank")?),
            tag: parse_u32(line_no, tokens.next(), "tag")?,
            bytes: parse_u64(line_no, tokens.next(), "byte count")?,
        },
        "SENDRECV" => CommInfo::SendRecv {
            to: Rank(parse_u32(line_no, tokens.next(), "destination rank")?),
            from: Rank(parse_u32(line_no, tokens.next(), "source rank")?),
            tag: parse_u32(line_no, tokens.next(), "tag")?,
            bytes: parse_u64(line_no, tokens.next(), "byte count")?,
        },
        "COLLECTIVE" => {
            let op_name = tokens
                .next()
                .ok_or_else(|| FormatError::at(line_no, "missing collective operation name"))?;
            CommInfo::Collective {
                op: collective_op(line_no, op_name)?,
                root: Rank(parse_u32(line_no, tokens.next(), "root rank")?),
                comm_size: parse_u32(line_no, tokens.next(), "communicator size")?,
                bytes: parse_u64(line_no, tokens.next(), "byte count")?,
            }
        }
        other => {
            return Err(FormatError::at(
                line_no,
                format!("unknown event kind {other:?}"),
            ));
        }
    };
    Ok(Event {
        region: RegionId(region),
        start: Time::from_nanos(start),
        end: Time::from_nanos(end),
        comm,
        wait: Duration::from_nanos(wait),
    })
}

/// Validates a context-id token against the tables.
pub fn parse_context_ref(
    tables: &TraceTables,
    line_no: usize,
    token: Option<&str>,
) -> Result<ContextId, FormatError> {
    let id = parse_u32(line_no, token, "context id")?;
    if (id as usize) >= tables.contexts.len() {
        return Err(FormatError::at(line_no, format!("unknown context id {id}")));
    }
    Ok(ContextId(id))
}

/// One classified line of a full-trace body.
#[derive(Clone, Debug, PartialEq)]
pub enum AppBodyLine {
    /// A `RANK <id>` section opener.
    RankStart(Rank),
    /// A record inside a rank section (marker or event).
    Record(TraceRecord),
    /// The `END_RANK` section closer.
    EndRank,
    /// The `END_TRACE` trailer.
    EndTrace,
}

/// Parses one line of a full-trace body.  `in_rank` selects the records that
/// are valid at this point (and the error message when none applies): inside
/// a rank section only `SEG_BEGIN`/`SEG_END`/`EVENT`/`END_RANK` are allowed,
/// outside only `RANK`/`END_TRACE`.
pub fn parse_app_body_line(
    tables: &TraceTables,
    line_no: usize,
    line: &str,
    in_rank: bool,
) -> Result<AppBodyLine, FormatError> {
    let mut tokens = line.split_whitespace();
    let keyword = tokens.next();
    if in_rank {
        match keyword {
            Some("END_RANK") => Ok(AppBodyLine::EndRank),
            Some("SEG_BEGIN") => {
                let context = parse_context_ref(tables, line_no, tokens.next())?;
                let time = parse_u64(line_no, tokens.next(), "time stamp")?;
                Ok(AppBodyLine::Record(TraceRecord::SegmentBegin {
                    context,
                    time: Time::from_nanos(time),
                }))
            }
            Some("SEG_END") => {
                let context = parse_context_ref(tables, line_no, tokens.next())?;
                let time = parse_u64(line_no, tokens.next(), "time stamp")?;
                Ok(AppBodyLine::Record(TraceRecord::SegmentEnd {
                    context,
                    time: Time::from_nanos(time),
                }))
            }
            Some("EVENT") => Ok(AppBodyLine::Record(TraceRecord::Event(parse_event_line(
                tables, line_no, line,
            )?))),
            other => Err(FormatError::at(
                line_no,
                format!("unexpected record {other:?} inside a rank section"),
            )),
        }
    } else {
        match keyword {
            Some("END_TRACE") => Ok(AppBodyLine::EndTrace),
            Some("RANK") => {
                let rank_id = parse_u32(line_no, tokens.next(), "rank id")?;
                Ok(AppBodyLine::RankStart(Rank(rank_id)))
            }
            other => Err(FormatError::at(
                line_no,
                format!("expected RANK or END_TRACE, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables() -> TraceTables {
        TraceTables {
            name: "t".into(),
            declared_ranks: 1,
            regions: RegionTable::from_names(vec!["work".into()]),
            contexts: ContextTable::from_names(vec!["main.1".into()]),
        }
    }

    #[test]
    fn header_builder_consumes_tables_and_stops_at_body() {
        let mut b = HeaderBuilder::new();
        assert_eq!(b.expecting(), "TRACE line");
        assert!(b.feed(2, "TRACE RANKS 3 NAME prog with spaces").unwrap());
        assert_eq!(b.expecting(), "REGION/CONTEXT table or rank data");
        assert!(b.feed(3, "REGION 0 do work").unwrap());
        assert!(b.feed(4, "CONTEXT 0 main.1").unwrap());
        assert!(!b.feed(5, "RANK 0").unwrap(), "body line not consumed");
        let t = b.finish().unwrap();
        assert_eq!(t.name, "prog with spaces");
        assert_eq!(t.declared_ranks, 3);
        assert_eq!(t.regions.names(), ["do work"]);
        assert_eq!(t.contexts.names(), ["main.1"]);
    }

    #[test]
    fn header_builder_rejects_sparse_ids_and_missing_trace_line() {
        let mut b = HeaderBuilder::new();
        assert!(b.feed(1, "REGION 0 x").is_err());
        let mut b = HeaderBuilder::new();
        b.feed(1, "TRACE RANKS 0 NAME x").unwrap();
        let err = b.feed(2, "CONTEXT 1 late").unwrap_err();
        assert!(err.message.contains("dense"), "{err}");
        let err = HeaderBuilder::new().finish().unwrap_err();
        assert_eq!(err.line, 0);
    }

    #[test]
    fn body_lines_are_classified_by_section_state() {
        let t = tables();
        assert_eq!(
            parse_app_body_line(&t, 1, "RANK 2", false).unwrap(),
            AppBodyLine::RankStart(Rank(2))
        );
        assert_eq!(
            parse_app_body_line(&t, 1, "END_TRACE", false).unwrap(),
            AppBodyLine::EndTrace
        );
        assert!(matches!(
            parse_app_body_line(&t, 1, "SEG_BEGIN 0 5", true).unwrap(),
            AppBodyLine::Record(TraceRecord::SegmentBegin { .. })
        ));
        assert_eq!(
            parse_app_body_line(&t, 1, "END_RANK", true).unwrap(),
            AppBodyLine::EndRank
        );
        // Section-state violations are errors with the section's message.
        let err = parse_app_body_line(&t, 9, "SEG_BEGIN 0 5", false).unwrap_err();
        assert!(err.message.contains("expected RANK or END_TRACE"), "{err}");
        let err = parse_app_body_line(&t, 9, "RANK 1", true).unwrap_err();
        assert!(err.message.contains("inside a rank section"), "{err}");
    }

    #[test]
    fn event_lines_validate_region_references() {
        let t = tables();
        let ev = parse_event_line(&t, 1, "EVENT 0 5 10 2 COMPUTE").unwrap();
        assert_eq!(ev.start.as_nanos(), 5);
        let err = parse_event_line(&t, 1, "EVENT 7 5 10 2 COMPUTE").unwrap_err();
        assert!(err.message.contains("unknown region"), "{err}");
    }
}
