//! Error type for the text trace format.

use std::fmt;

/// An error encountered while parsing the text trace format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based line number the error was detected on (0 for end-of-input
    /// errors that are not tied to a specific line).
    pub line: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl FormatError {
    /// Creates an error tied to a line.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        FormatError {
            line,
            message: message.into(),
        }
    }

    /// Creates an error about the overall structure (missing trailer, …).
    pub fn structural(message: impl Into<String>) -> Self {
        FormatError {
            line: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "trace format error: {}", self.message)
        } else {
            write!(
                f,
                "trace format error at line {}: {}",
                self.line, self.message
            )
        }
    }
}

impl std::error::Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_the_line_when_known() {
        let e = FormatError::at(17, "bad record");
        assert_eq!(e.to_string(), "trace format error at line 17: bad record");
        let s = FormatError::structural("missing END");
        assert_eq!(s.to_string(), "trace format error: missing END");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FormatError::at(1, "x"), FormatError::at(1, "x"));
        assert_ne!(FormatError::at(1, "x"), FormatError::at(2, "x"));
    }
}
