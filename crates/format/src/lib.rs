#![forbid(unsafe_code)]
//! Text trace format: an OTF-style, line-oriented ASCII encoding.
//!
//! The reproduction-difficulty note for this paper calls trace-format
//! parsers "thin" in the Rust ecosystem, and the paper's own workflow moves
//! traces between a tracer, a reduction step and the KOJAK analyzer as
//! files.  This crate provides the interchange piece: a human-readable,
//! line-oriented text format (in the spirit of the ASCII variants of OTF and
//! EPILOG) for both full application traces and reduced traces, with a
//! strict parser that reports the line number and cause of every error.
//!
//! * [`mod@write`] — serialize [`trace_model::AppTrace`] /
//!   [`trace_model::ReducedAppTrace`] to the text format, either whole or
//!   record by record via [`write::AppTraceTextWriter`].
//! * [`parse`] — parse them back, validating record structure, identifier
//!   references and time-stamp ordering.
//! * [`record`] — the line-level record grammar shared by [`parse`] and the
//!   streaming parser in the `trace_stream` crate.
//! * [`error::FormatError`] — the error type carrying the offending line.
//!
//! The binary codec in `trace-model` remains the format used for file-size
//! measurements (it is what the paper's percentages are computed against);
//! the text format exists for interoperability, debugging and the
//! import/export paths of the `trace-tools` CLI.

#![warn(missing_docs)]

pub mod error;
pub mod parse;
pub mod record;
pub mod write;

pub use error::FormatError;
pub use parse::{parse_app_trace, parse_reduced_trace};
pub use record::{parse_app_body_line, AppBodyLine, HeaderBuilder, TraceTables};
pub use write::{
    write_app_trace, write_app_trace_to, write_reduced_trace, write_reduced_trace_to,
    AppTraceTextWriter,
};
