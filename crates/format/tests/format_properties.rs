//! Property-based tests for the text trace format: randomly constructed
//! traces must round trip exactly, and random corruption must never panic
//! the parser (it either parses or reports a structured error).

use proptest::prelude::*;

use trace_format::{parse_app_trace, write_app_trace};
use trace_model::{AppTrace, CollectiveOp, CommInfo, Event, Rank, Time};

/// Strategy for one event's communication metadata.
fn comm_info(n_ranks: u32) -> impl Strategy<Value = CommInfo> {
    let rank = 0..n_ranks.max(1);
    prop_oneof![
        Just(CommInfo::Compute),
        (rank.clone(), 0u32..8, 1u64..10_000).prop_map(|(peer, tag, bytes)| CommInfo::Send {
            peer: Rank(peer),
            tag,
            bytes
        }),
        (rank.clone(), 0u32..8, 1u64..10_000).prop_map(|(peer, tag, bytes)| CommInfo::Recv {
            peer: Rank(peer),
            tag,
            bytes
        }),
        (0usize..CollectiveOp::ALL.len(), rank, 1u64..10_000).prop_map(move |(op, root, bytes)| {
            CommInfo::Collective {
                op: CollectiveOp::ALL[op],
                root: Rank(root),
                comm_size: n_ranks.max(1),
                bytes,
            }
        }),
    ]
}

/// Strategy for a small synthetic application trace.
fn app_trace() -> impl Strategy<Value = AppTrace> {
    (1u32..4, 1usize..4, 1usize..6).prop_flat_map(|(n_ranks, n_segments, events_per_segment)| {
        prop::collection::vec(
            prop::collection::vec(
                (comm_info(n_ranks), 1u64..1_000),
                n_segments * events_per_segment,
            ),
            n_ranks as usize,
        )
        .prop_map(move |per_rank| {
            let mut app = AppTrace::new("proptest_trace", n_ranks as usize);
            let work = app.regions.intern("do_work");
            let comm = app.regions.intern("MPI_Op");
            let ctx = app.contexts.intern("main.1");
            for (rank_index, events) in per_rank.into_iter().enumerate() {
                let mut now = 0u64;
                let rank = &mut app.ranks[rank_index];
                for chunk in events.chunks(events_per_segment.max(1)) {
                    rank.begin_segment(ctx, Time::from_nanos(now));
                    for (info, duration) in chunk {
                        let region = if info.is_communication() { comm } else { work };
                        let start = now + 1;
                        let end = start + duration;
                        rank.push_event(Event::with_comm(
                            region,
                            Time::from_nanos(start),
                            Time::from_nanos(end),
                            *info,
                        ));
                        now = end;
                    }
                    rank.end_segment(ctx, Time::from_nanos(now + 1));
                    now += 2;
                }
            }
            app
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_traces_round_trip_exactly(app in app_trace()) {
        let text = write_app_trace(&app);
        let parsed = parse_app_trace(&text).expect("writer output must parse");
        prop_assert_eq!(parsed, app);
    }

    #[test]
    fn dropping_a_random_line_never_panics(app in app_trace(), drop in 0usize..200) {
        let text = write_app_trace(&app);
        let lines: Vec<&str> = text.lines().collect();
        let corrupted: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop % lines.len())
            .map(|(_, l)| *l)
            .collect::<Vec<_>>()
            .join("\n");
        // Either it still parses (dropping a redundant line) or it reports a
        // structured error — both are acceptable; panicking is not.
        let _ = parse_app_trace(&corrupted);
    }

    #[test]
    fn truncation_never_panics(app in app_trace(), keep_fraction in 0.0..1.0f64) {
        // The text format is pure ASCII, so byte-level truncation is safe.
        let text = write_app_trace(&app);
        let cut = (text.len() as f64 * keep_fraction) as usize;
        let truncated = &text[..cut.min(text.len())];
        let _ = parse_app_trace(truncated);
    }
}
