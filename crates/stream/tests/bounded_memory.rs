//! Acceptance test: the streaming reducer's resident state is bounded by
//! stored representatives + in-flight segments, on a generated trace at
//! least 10× larger than that bound (ISSUE 2 acceptance criterion).

use std::io::Cursor;

use trace_format::parse_app_trace;
use trace_reduce::{Method, MethodConfig, Reducer};
use trace_sim::{SizePreset, Workload, WorkloadKind};
use trace_stream::{reduce_stream, reduce_trace_file};

/// Generates an amplified Late Sender trace (the run replayed back-to-back)
/// directly into a byte buffer via the sim's writer integration.
fn amplified_text(repeats: usize) -> Vec<u8> {
    Workload::new(WorkloadKind::LateSender, SizePreset::Tiny)
        .write_text_amplified_to(Vec::new(), repeats)
        .expect("writing to a Vec cannot fail")
}

#[test]
fn resident_state_stays_an_order_of_magnitude_below_the_stream() {
    let text = amplified_text(60);
    let config = MethodConfig::with_default_threshold(Method::AvgWave);
    let streamed = reduce_stream(config, Cursor::new(text.as_slice())).unwrap();

    // The amplified trace streams ≥ 10× more segments than the reducer
    // ever holds at once (stored representatives + one in-flight segment
    // per active rank — ranks are streamed one at a time here).
    let bound = streamed.stats.stored + 1;
    assert!(streamed.stats.peak_resident_segments <= bound);
    assert!(
        streamed.stats.segments >= 10 * streamed.stats.peak_resident_segments,
        "trace too small for the claim: {} segments vs peak resident {}",
        streamed.stats.segments,
        streamed.stats.peak_resident_segments
    );

    // Semantically identical to materializing the whole trace and reducing
    // it in memory.
    let app = parse_app_trace(std::str::from_utf8(&text).unwrap()).unwrap();
    let in_memory = Reducer::new(config).reduce_app(&app);
    assert_eq!(streamed.reduced, in_memory);
}

#[test]
fn big_trace_end_to_end_through_a_file_with_shards() {
    let text = amplified_text(40);
    let mut path = std::env::temp_dir();
    path.push(format!("trace_stream_big_{}.txt", std::process::id()));
    std::fs::write(&path, &text).unwrap();

    let config = MethodConfig::with_default_threshold(Method::RelDiff);
    let sequential = reduce_stream(config, Cursor::new(text.as_slice())).unwrap();
    let sharded = reduce_trace_file(config, &path, 4).unwrap();
    assert_eq!(sharded.reduced, sequential.reduced);
    // Every shard obeys the per-worker bound; the merged peak is the sum of
    // concurrent workers, still far below the streamed segment count.
    assert!(sharded.stats.segments >= 10 * sharded.stats.peak_resident_segments);

    let _ = std::fs::remove_file(&path);
}
