//! Property: streaming reduction ≡ in-memory reduction.
//!
//! Random multi-rank traces (mixed contexts, event shapes and timings,
//! including repeated same-shape segments so matching actually happens) are
//! serialized to the text format and reduced twice — once in memory via
//! [`trace_reduce::Reducer`], once via [`trace_stream::reduce_stream`] —
//! for every `Method` variant.  Stored segments and execution logs must be
//! identical, and the sharded driver must agree with both.

use std::io::Cursor;

use proptest::prelude::*;
use trace_format::write_app_trace;
use trace_model::{AppTrace, CommInfo, Event, Rank, Time};
use trace_reduce::{Method, MethodConfig, Reducer};
use trace_stream::{reduce_stream, reduce_stream_sharded};

/// One generated segment: which context it runs in, which event-shape
/// template it instantiates, and a timing jitter applied to its events.
type SegmentSpec = (u8, u8, u16);

/// Builds a deterministic multi-rank trace from generated segment specs.
fn build_trace(rank_specs: &[Vec<SegmentSpec>]) -> AppTrace {
    let mut app = AppTrace::new("proptrace", rank_specs.len());
    let regions: Vec<_> = (0..3)
        .map(|i| app.regions.intern(&format!("region_{i}")))
        .collect();
    let contexts: Vec<_> = (0..2)
        .map(|i| app.contexts.intern(&format!("loop.{i}")))
        .collect();

    for (rank_index, specs) in rank_specs.iter().enumerate() {
        let rank = &mut app.ranks[rank_index];
        let mut now = 0u64;
        for &(ctx, shape, jitter) in specs {
            let context = contexts[(ctx as usize) % contexts.len()];
            let jitter = jitter as u64;
            rank.begin_segment(context, Time::from_nanos(now));
            let mut cursor = now + 5;
            // The shape selects the event template; the same shape always
            // produces the same regions/comm parameters, so same-shape
            // segments are eligible to match and the jitter decides whether
            // the similarity metric accepts them.
            match shape % 3 {
                0 => {
                    rank.push_event(Event::compute(
                        regions[0],
                        Time::from_nanos(cursor),
                        Time::from_nanos(cursor + 100 + jitter),
                    ));
                    cursor += 100 + jitter;
                }
                1 => {
                    rank.push_event(Event::compute(
                        regions[1],
                        Time::from_nanos(cursor),
                        Time::from_nanos(cursor + 50),
                    ));
                    cursor += 50;
                    rank.push_event(Event::with_comm(
                        regions[2],
                        Time::from_nanos(cursor),
                        Time::from_nanos(cursor + 200 + 2 * jitter),
                        CommInfo::Send {
                            peer: Rank(((rank_index + 1) % rank_specs.len().max(1)) as u32),
                            tag: 7,
                            bytes: 1024,
                        },
                    ));
                    cursor += 200 + 2 * jitter;
                }
                _ => {
                    rank.push_event(Event::with_comm(
                        regions[2],
                        Time::from_nanos(cursor),
                        Time::from_nanos(cursor + 300 + jitter),
                        CommInfo::Recv {
                            peer: Rank(0),
                            tag: 7,
                            bytes: 1024,
                        },
                    ));
                    cursor += 300 + jitter;
                }
            }
            rank.end_segment(context, Time::from_nanos(cursor + 5));
            now = cursor + 10;
        }
    }
    app
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_reducer_equals_in_memory_reducer(rank_specs in prop::collection::vec(
        prop::collection::vec((0u8..4, 0u8..4, 0u16..2000), 0..10),
        1..4,
    )) {
        let app = build_trace(&rank_specs);
        prop_assert!(app.is_well_formed());
        let text = write_app_trace(&app);

        for method in Method::ALL {
            let config = MethodConfig::with_default_threshold(method);
            let in_memory = Reducer::new(config).reduce_app(&app);
            let streamed = reduce_stream(config, Cursor::new(text.as_bytes()))
                .expect("generated traces parse");
            // Same stored segments, same execution logs, for every rank.
            prop_assert_eq!(&streamed.reduced, &in_memory, "{}", method);
            // And the resident bound holds: stored + one in-flight segment
            // per (single) active rank.
            prop_assert!(
                streamed.stats.peak_resident_segments <= streamed.stats.stored + 1,
                "{}: peak {} vs stored {}",
                method,
                streamed.stats.peak_resident_segments,
                streamed.stats.stored
            );
        }
    }

    #[test]
    fn sharded_streaming_agrees_with_sequential(rank_specs in prop::collection::vec(
        prop::collection::vec((0u8..4, 0u8..4, 0u16..2000), 0..8),
        1..5,
    )) {
        let app = build_trace(&rank_specs);
        let text = write_app_trace(&app);
        let config = MethodConfig::with_default_threshold(Method::AvgWave);
        let sequential = reduce_stream(config, Cursor::new(text.as_bytes())).unwrap();
        for shards in [2usize, 3] {
            let sharded = reduce_stream_sharded(config, shards, |_| {
                Ok(Cursor::new(text.as_bytes().to_vec()))
            })
            .unwrap();
            prop_assert_eq!(&sharded.reduced, &sequential.reduced, "{} shards", shards);
        }
    }
}

#[test]
fn thresholded_methods_agree_across_the_threshold_grid() {
    // Sweep the paper's threshold grids on one fixed trace: the streaming
    // and in-memory reducers must agree at every operating point, not just
    // the defaults.
    let specs: Vec<Vec<SegmentSpec>> = vec![
        (0..20)
            .map(|i| (0u8, (i % 3) as u8, (i * 97 % 1500) as u16))
            .collect(),
        (0..15)
            .map(|i| (1u8, (i % 2) as u8, (i * 131 % 900) as u16))
            .collect(),
    ];
    let app = build_trace(&specs);
    let text = write_app_trace(&app);
    for method in Method::ALL {
        for threshold in method.threshold_grid() {
            let config = MethodConfig::new(method, threshold);
            let in_memory = Reducer::new(config).reduce_app(&app);
            let streamed = reduce_stream(config, Cursor::new(text.as_bytes())).unwrap();
            assert_eq!(streamed.reduced, in_memory, "{method} @ {threshold}");
        }
    }
}
