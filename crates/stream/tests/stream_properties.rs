//! Property: streaming reduction ≡ in-memory reduction.
//!
//! Random multi-rank traces (mixed contexts, event shapes and timings,
//! including repeated same-shape segments so matching actually happens) are
//! serialized to the text format and reduced twice — once in memory via
//! [`trace_reduce::Reducer`], once via [`trace_stream::reduce_stream`] —
//! for every `Method` variant.  Stored segments and execution logs must be
//! identical, and the sharded driver must agree with both.

use std::io::Cursor;

use proptest::prelude::*;
use trace_format::write_app_trace;
use trace_reduce::{reduce_app_reference, reduce_rank_reference, Method, MethodConfig, Reducer};
use trace_sim::specgen::{trace_from_specs, SegmentSpec};
use trace_stream::{reduce_stream, reduce_stream_sharded};

fn build_trace(rank_specs: &[Vec<SegmentSpec>]) -> trace_model::AppTrace {
    trace_from_specs("proptrace", rank_specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_reducer_equals_in_memory_reducer(rank_specs in prop::collection::vec(
        prop::collection::vec((0u8..4, 0u8..4, 0u16..2000), 0..10),
        1..4,
    )) {
        let app = build_trace(&rank_specs);
        prop_assert!(app.is_well_formed());
        let text = write_app_trace(&app);

        for method in Method::ALL {
            let config = MethodConfig::with_default_threshold(method);
            let in_memory = Reducer::new(config).reduce_app(&app);
            let streamed = reduce_stream(config, Cursor::new(text.as_bytes()))
                .expect("generated traces parse");
            // Same stored segments, same execution logs, for every rank.
            prop_assert_eq!(&streamed.reduced, &in_memory, "{}", method);
            // And the resident bound holds: stored + one in-flight segment
            // per (single) active rank.
            prop_assert!(
                streamed.stats.peak_resident_segments <= streamed.stats.stored + 1,
                "{}: peak {} vs stored {}",
                method,
                streamed.stats.peak_resident_segments,
                streamed.stats.stored
            );
        }
    }

    #[test]
    fn sharded_streaming_agrees_with_sequential(rank_specs in prop::collection::vec(
        prop::collection::vec((0u8..4, 0u8..4, 0u16..2000), 0..8),
        1..5,
    )) {
        let app = build_trace(&rank_specs);
        let text = write_app_trace(&app);
        let config = MethodConfig::with_default_threshold(Method::AvgWave);
        let sequential = reduce_stream(config, Cursor::new(text.as_bytes())).unwrap();
        for shards in [2usize, 3] {
            let sharded = reduce_stream_sharded(config, shards, |_| {
                Ok(Cursor::new(text.as_bytes().to_vec()))
            })
            .unwrap();
            prop_assert_eq!(&sharded.reduced, &sequential.reduced, "{} shards", shards);
        }
    }
}

#[test]
fn thresholded_methods_agree_across_the_threshold_grid() {
    // Sweep the paper's threshold grids on one fixed trace: the streaming
    // and in-memory reducers must agree at every operating point, not just
    // the defaults.
    let specs: Vec<Vec<SegmentSpec>> = vec![
        (0..20)
            .map(|i| (0u8, (i % 3) as u8, (i * 97 % 1500) as u16))
            .collect(),
        (0..15)
            .map(|i| (1u8, (i % 2) as u8, (i * 131 % 900) as u16))
            .collect(),
    ];
    let app = build_trace(&specs);
    let text = write_app_trace(&app);
    for method in Method::ALL {
        for threshold in method.threshold_grid() {
            let config = MethodConfig::new(method, threshold);
            let in_memory = Reducer::new(config).reduce_app(&app);
            let streamed = reduce_stream(config, Cursor::new(text.as_bytes())).unwrap();
            assert_eq!(streamed.reduced, in_memory, "{method} @ {threshold}");
        }
    }
}

#[test]
fn streaming_and_sharded_drivers_match_the_naive_reference_path() {
    // The streaming loop drives the cached fast path (scratch threaded
    // from rank to rank); its output must still be bit-identical to the
    // naive reference reducer across all nine methods and the threshold
    // grids, sequentially and sharded.
    let specs: Vec<Vec<SegmentSpec>> = (0..4)
        .map(|rank| {
            (0..18)
                .map(|i| {
                    (
                        (rank % 2) as u8,
                        ((i + rank) % 3) as u8,
                        ((i * 89 + rank * 37) % 1400) as u16,
                    )
                })
                .collect()
        })
        .collect();
    let app = build_trace(&specs);
    let text = write_app_trace(&app);
    for method in Method::ALL {
        for threshold in std::iter::once(method.default_threshold()).chain(method.threshold_grid())
        {
            let config = MethodConfig::new(method, threshold);
            let reference = reduce_app_reference(config, &app);
            let streamed = reduce_stream(config, Cursor::new(text.as_bytes())).unwrap();
            assert_eq!(streamed.reduced, reference, "{method} @ {threshold}");
            // Fast-path counters partition; matches are the same decisions
            // the reference made.
            let matching = streamed.stats.matching;
            assert_eq!(
                matching.prefilter_rejects + matching.early_abandons + matching.full_kernels,
                matching.comparisons,
                "{method} @ {threshold}"
            );
            for shards in [2usize, 3] {
                let sharded = reduce_stream_sharded(config, shards, |_| {
                    Ok(Cursor::new(text.as_bytes().to_vec()))
                })
                .unwrap();
                assert_eq!(
                    sharded.reduced, reference,
                    "{method} @ {threshold}, {shards} shards"
                );
            }
        }
    }
}

#[test]
fn streaming_index_counters_reconcile_with_the_reference_scan() {
    // The streaming loop drives the candidate index by default.  Every
    // candidate the naive reference compared must be accounted for by the
    // streamed counters — either visited (`comparisons`) or attributed to
    // a window / pivot prune — and the sharded driver must aggregate the
    // identical totals, merely in a different worker order.  (60 segments
    // per rank: the per-shape buckets must outgrow the index's
    // small-bucket fallback for the prune counters to be non-trivial.)
    let specs: Vec<Vec<SegmentSpec>> = (0..3)
        .map(|rank| {
            (0..60)
                .map(|i| {
                    (
                        (rank % 2) as u8,
                        (i % 3) as u8,
                        ((i * 211 + rank * 53) % 1600) as u16,
                    )
                })
                .collect()
        })
        .collect();
    let app = build_trace(&specs);
    let text = write_app_trace(&app);
    for method in Method::ALL.into_iter().filter(|m| m.is_distance_method()) {
        let config = MethodConfig::with_default_threshold(method);
        let reference_comparisons: usize = app
            .ranks
            .iter()
            .map(|rank| reduce_rank_reference(config, rank).matching.comparisons)
            .sum();
        let streamed = reduce_stream(config, Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(
            streamed.stats.matching.candidates(),
            reference_comparisons,
            "{method}: streamed candidates must cover the reference scan"
        );
        assert!(
            streamed.stats.matching.comparisons <= reference_comparisons,
            "{method}: the index must never visit more than the scan"
        );
        for shards in [2usize, 3] {
            let sharded = reduce_stream_sharded(config, shards, |_| {
                Ok(Cursor::new(text.as_bytes().to_vec()))
            })
            .unwrap();
            assert_eq!(
                sharded.stats.matching, streamed.stats.matching,
                "{method} with {shards} shards: counters aggregate identically"
            );
        }
    }
}
