//! Acceptance tests for binary streaming (ISSUE 3 and ISSUE 4 acceptance
//! criteria), the container analogue of `bounded_memory.rs`: on an
//! amplified container at least 10× larger than the resident bound,
//!
//! * `reduce --stream` over a v2 container — compressed or not — is
//!   bit-identical to decoding the container in memory and reducing it
//!   with the batch reducer, and
//! * peak resident state stays bounded — both the segment bound
//!   (stored + one in-flight) and the chunk bound (one decompressed chunk
//!   payload, far below the file size the monolithic v1 decoder would
//!   materialize), and
//! * index-sharded ingestion (`--shards N`) matches the single-shard
//!   output, and
//! * at the paper preset, a `delta-lz` container is at least 2× smaller on
//!   disk than an uncompressed one while reducing to the identical output.

use std::io::Cursor;

use trace_container::{read_app_container, ChunkSpec, Codec};
use trace_model::codec::encode_reduced_trace;
use trace_reduce::{Method, MethodConfig, Reducer};
use trace_sim::{SizePreset, Workload, WorkloadKind};
use trace_stream::{reduce_container_file, reduce_container_stream};

/// An amplified Late Sender container: the run replayed back-to-back,
/// streamed straight into container chunks via the sim's writer.
fn amplified_container(repeats: usize, segments_per_chunk: usize, codec: Codec) -> Vec<u8> {
    Workload::new(WorkloadKind::LateSender, SizePreset::Tiny)
        .write_container_amplified_to(
            Vec::new(),
            repeats,
            ChunkSpec::with_segments(segments_per_chunk).codec(codec),
        )
        .expect("writing to a Vec cannot fail")
}

#[test]
fn resident_state_stays_an_order_of_magnitude_below_the_container() {
    for codec in [Codec::None, Codec::DeltaLz] {
        let bytes = amplified_container(60, 8, codec);
        let config = MethodConfig::with_default_threshold(Method::AvgWave);
        let streamed = reduce_container_stream(config, Cursor::new(&bytes)).unwrap();

        // Segment bound: stored representatives + one in-flight segment.
        let bound = streamed.stats.stored + 1;
        assert!(streamed.stats.peak_resident_segments <= bound);
        assert!(
            streamed.stats.segments >= 10 * streamed.stats.peak_resident_segments,
            "trace too small for the claim: {} segments vs peak resident {}",
            streamed.stats.segments,
            streamed.stats.peak_resident_segments
        );

        // Chunk bound: the largest buffered payload — decompressed, for
        // compressed chunks — is far below the file size (the monolithic v1
        // path would hold all of it, the whole-file decompression of a
        // gzip-style envelope would hold even more).
        assert!(streamed.stats.peak_chunk_bytes > 0);
        assert!(
            bytes.len() >= 10 * streamed.stats.peak_chunk_bytes,
            "{}: peak chunk {} vs container {} bytes",
            codec.name(),
            streamed.stats.peak_chunk_bytes,
            bytes.len()
        );

        // Bit-identical to the in-memory binary path: decode the whole
        // container, reduce in memory, and compare the *encoded* outputs.
        let app = read_app_container(&bytes[..]).unwrap();
        let in_memory = Reducer::new(config).reduce_app(&app);
        assert_eq!(streamed.reduced, in_memory);
        assert_eq!(
            encode_reduced_trace(&streamed.reduced),
            encode_reduced_trace(&in_memory)
        );
    }
}

#[test]
fn big_container_end_to_end_through_a_file_with_shards() {
    for codec in [Codec::None, Codec::DeltaLz] {
        let bytes = amplified_container(40, 16, codec);
        let mut path = std::env::temp_dir();
        path.push(format!(
            "trace_stream_big_container_{}_{}.trc",
            std::process::id(),
            codec.name()
        ));
        std::fs::write(&path, &bytes).unwrap();

        let config = MethodConfig::with_default_threshold(Method::RelDiff);
        let sequential = reduce_container_stream(config, Cursor::new(&bytes)).unwrap();
        for shards in [2, 4] {
            let sharded = reduce_container_file(config, &path, shards).unwrap();
            // Index-sharded ingestion matches the single-shard output
            // bit-for-bit.
            assert_eq!(
                encode_reduced_trace(&sharded.reduced),
                encode_reduced_trace(&sequential.reduced),
                "{shards} shards ({})",
                codec.name()
            );
            // Per-reader chunk bound holds under sharding too.
            assert!(bytes.len() >= 10 * sharded.stats.peak_chunk_bytes);
            assert!(sharded.stats.segments >= 10 * sharded.stats.peak_resident_segments);
        }

        let _ = std::fs::remove_file(&path);
    }
}

/// ISSUE 4 acceptance criterion: at the paper preset, `delta-lz` halves
/// the container (at least) and changes nothing about the reduction output
/// or the one-decompressed-chunk residency.  The workload is the paper's
/// real-application trace (Sweep3D); the interference-heavy benchmarks
/// carry deliberately injected timing noise that no lossless codec can
/// remove (whole-file zlib-9 manages ~1.8× on `dyn_load_balance`, this
/// subsystem's per-chunk `delta-lz` ~1.7×), and EXPERIMENTS.md Table 5
/// records the per-codec ratios across that spectrum.
#[test]
fn paper_preset_delta_lz_at_least_halves_the_container() {
    let workload = Workload::new(WorkloadKind::Sweep3d8p, SizePreset::Paper);
    let none = workload
        .write_container_to(Vec::new(), ChunkSpec::default())
        .expect("writing to a Vec cannot fail");
    let dlz = workload
        .write_container_to(Vec::new(), ChunkSpec::with_codec(Codec::DeltaLz))
        .expect("writing to a Vec cannot fail");
    assert!(
        none.len() >= 2 * dlz.len(),
        "delta-lz must at least halve the paper-preset container: \
         {} vs {} bytes (ratio {:.2})",
        dlz.len(),
        none.len(),
        none.len() as f64 / dlz.len() as f64
    );

    // The compressed container reduces to the bit-identical output of both
    // the uncompressed streaming path and the in-memory path.
    let config = MethodConfig::with_default_threshold(Method::AvgWave);
    let from_dlz = reduce_container_stream(config, Cursor::new(&dlz)).unwrap();
    let from_none = reduce_container_stream(config, Cursor::new(&none)).unwrap();
    let in_memory = Reducer::new(config).reduce_app(&read_app_container(&none[..]).unwrap());
    assert_eq!(from_dlz.reduced, from_none.reduced);
    assert_eq!(
        encode_reduced_trace(&from_dlz.reduced),
        encode_reduced_trace(&in_memory)
    );

    // Still one decompressed chunk resident: the compressed reader's peak
    // matches the uncompressed reader's (same chunk grouping, decoded
    // payloads identical) and stays an order of magnitude below the
    // uncompressed byte volume it represents.
    assert_eq!(
        from_dlz.stats.peak_chunk_bytes,
        from_none.stats.peak_chunk_bytes
    );
    assert!(none.len() >= 10 * from_dlz.stats.peak_chunk_bytes);
}
