//! Acceptance test for binary streaming (ISSUE 3 acceptance criterion),
//! the container analogue of `bounded_memory.rs`: on an amplified container
//! at least 10× larger than the resident bound,
//!
//! * `reduce --stream` over a v2 container is bit-identical to decoding the
//!   container in memory and reducing it with the batch reducer, and
//! * peak resident state stays bounded — both the segment bound
//!   (stored + one in-flight) and the chunk bound (one chunk payload, far
//!   below the file size the monolithic v1 decoder would materialize), and
//! * index-sharded ingestion (`--shards N`) matches the single-shard output.

use std::io::Cursor;

use trace_container::{read_app_container, ChunkSpec};
use trace_model::codec::encode_reduced_trace;
use trace_reduce::{Method, MethodConfig, Reducer};
use trace_sim::{SizePreset, Workload, WorkloadKind};
use trace_stream::{reduce_container_file, reduce_container_stream};

/// An amplified Late Sender container: the run replayed back-to-back,
/// streamed straight into container chunks via the sim's writer.
fn amplified_container(repeats: usize, segments_per_chunk: usize) -> Vec<u8> {
    Workload::new(WorkloadKind::LateSender, SizePreset::Tiny)
        .write_container_amplified_to(
            Vec::new(),
            repeats,
            ChunkSpec::with_segments(segments_per_chunk),
        )
        .expect("writing to a Vec cannot fail")
}

#[test]
fn resident_state_stays_an_order_of_magnitude_below_the_container() {
    let bytes = amplified_container(60, 8);
    let config = MethodConfig::with_default_threshold(Method::AvgWave);
    let streamed = reduce_container_stream(config, Cursor::new(&bytes)).unwrap();

    // Segment bound: stored representatives + one in-flight segment.
    let bound = streamed.stats.stored + 1;
    assert!(streamed.stats.peak_resident_segments <= bound);
    assert!(
        streamed.stats.segments >= 10 * streamed.stats.peak_resident_segments,
        "trace too small for the claim: {} segments vs peak resident {}",
        streamed.stats.segments,
        streamed.stats.peak_resident_segments
    );

    // Chunk bound: the largest buffered payload is far below the file size
    // (the monolithic v1 path would hold all of it).
    assert!(streamed.stats.peak_chunk_bytes > 0);
    assert!(
        bytes.len() >= 10 * streamed.stats.peak_chunk_bytes,
        "peak chunk {} vs container {} bytes",
        streamed.stats.peak_chunk_bytes,
        bytes.len()
    );

    // Bit-identical to the in-memory binary path: decode the whole
    // container, reduce in memory, and compare the *encoded* outputs.
    let app = read_app_container(&bytes[..]).unwrap();
    let in_memory = Reducer::new(config).reduce_app(&app);
    assert_eq!(streamed.reduced, in_memory);
    assert_eq!(
        encode_reduced_trace(&streamed.reduced),
        encode_reduced_trace(&in_memory)
    );
}

#[test]
fn big_container_end_to_end_through_a_file_with_shards() {
    let bytes = amplified_container(40, 16);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "trace_stream_big_container_{}.trc",
        std::process::id()
    ));
    std::fs::write(&path, &bytes).unwrap();

    let config = MethodConfig::with_default_threshold(Method::RelDiff);
    let sequential = reduce_container_stream(config, Cursor::new(&bytes)).unwrap();
    for shards in [2, 4] {
        let sharded = reduce_container_file(config, &path, shards).unwrap();
        // Index-sharded ingestion matches the single-shard output
        // bit-for-bit.
        assert_eq!(
            encode_reduced_trace(&sharded.reduced),
            encode_reduced_trace(&sequential.reduced),
            "{shards} shards"
        );
        // Per-reader chunk bound holds under sharding too.
        assert!(bytes.len() >= 10 * sharded.stats.peak_chunk_bytes);
        assert!(sharded.stats.segments >= 10 * sharded.stats.peak_resident_segments);
    }

    let _ = std::fs::remove_file(&path);
}
