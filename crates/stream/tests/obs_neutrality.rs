//! Acceptance test: observability is behaviour-neutral (ISSUE 8).
//!
//! For every paper method and every reduction driver — sequential
//! in-memory, parallel in-memory, streaming, sharded streaming and
//! container streaming — the reduced trace produced with an enabled
//! recorder must be bit-identical to the one produced with recording off.
//! The comparison is on the *encoded bytes*, not just `PartialEq`, so even
//! an ordering or serialization drift would fail.  Each enabled run is
//! also asserted to have actually recorded (non-empty report), so the
//! neutrality claim is never vacuous.

use std::io::Cursor;

use trace_container::{encode_app_container, ChunkSpec};
use trace_model::codec::encode_reduced_trace;
use trace_model::ReducedAppTrace;
use trace_obs::Recorder;
use trace_reduce::{reduce_app_parallel_obs, Method, MethodConfig, Reducer};
use trace_sim::{SizePreset, Workload, WorkloadKind};
use trace_stream::{reduce_container_stream_obs, reduce_stream_obs, reduce_stream_sharded_obs};

/// A reduction driver: one way of running a method over the workload.
type Driver<'a> = Box<dyn Fn(&Recorder) -> ReducedAppTrace + 'a>;

/// Runs `drive` twice — recording off, then on — and returns both reduced
/// traces plus the enabled run's report emptiness.
fn both_states(drive: impl Fn(&Recorder) -> ReducedAppTrace) -> (Vec<u8>, Vec<u8>, bool) {
    let off = drive(&Recorder::disabled());
    let enabled = Recorder::enabled();
    let on = drive(&enabled);
    (
        encode_reduced_trace(&off),
        encode_reduced_trace(&on),
        enabled.report().is_empty(),
    )
}

#[test]
fn recording_never_changes_the_reduction_for_any_method_or_driver() {
    let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
    let text = trace_format::write_app_trace(&app).into_bytes();
    let container = encode_app_container(&app, ChunkSpec::with_segments(8));

    for method in Method::ALL {
        let config = MethodConfig::with_default_threshold(method);
        let reducer = Reducer::new(config);
        let drivers: Vec<(&str, Driver)> = vec![
            (
                "sequential",
                Box::new(|rec| reducer.reduce_app_obs(&app, rec).0),
            ),
            (
                "parallel",
                Box::new(|rec| reduce_app_parallel_obs(&reducer, &app, 4, rec).0),
            ),
            (
                "streaming",
                Box::new(|rec| {
                    reduce_stream_obs(config, Cursor::new(text.as_slice()), rec)
                        .unwrap()
                        .reduced
                }),
            ),
            (
                "sharded",
                Box::new(|rec| {
                    reduce_stream_sharded_obs(config, 3, |_| Ok(Cursor::new(text.clone())), rec)
                        .unwrap()
                        .reduced
                }),
            ),
            (
                "container",
                Box::new(|rec| {
                    reduce_container_stream_obs(config, Cursor::new(container.as_slice()), rec)
                        .unwrap()
                        .reduced
                }),
            ),
        ];
        for (driver, drive) in drivers {
            let (off, on, report_empty) = both_states(drive);
            assert_eq!(
                off, on,
                "{method} / {driver}: recording changed the reduced bytes"
            );
            assert!(
                !report_empty,
                "{method} / {driver}: the enabled run recorded nothing — the \
                 neutrality assertion would be vacuous"
            );
        }
    }
}

#[test]
fn enabled_reports_carry_the_drained_pipeline_counters() {
    let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
    let text = trace_format::write_app_trace(&app).into_bytes();
    let config = MethodConfig::with_default_threshold(Method::AvgWave);

    let recorder = Recorder::enabled();
    let reduction = reduce_stream_obs(config, Cursor::new(text.as_slice()), &recorder).unwrap();
    let report = recorder.report();

    // The unified registry mirrors the legacy stats structs exactly —
    // counters are drained once, not once per shard.
    assert_eq!(
        report.counters.get("stream.events").copied(),
        Some(reduction.stats.events as u64)
    );
    assert_eq!(
        report.counters.get("stream.stored").copied(),
        Some(reduction.stats.stored as u64)
    );
    assert_eq!(
        report.counters.get("match.comparisons").copied(),
        Some(reduction.stats.matching.comparisons as u64)
    );
    assert_eq!(
        report.gauges.get("stream.peak_resident_segments").copied(),
        Some(reduction.stats.peak_resident_segments as u64)
    );
    // One Rank span per rank section streamed.
    let rank_spans = report
        .spans
        .iter()
        .filter(|s| s.stage == trace_obs::Stage::Rank)
        .count();
    assert_eq!(rank_spans, reduction.stats.ranks);
}
