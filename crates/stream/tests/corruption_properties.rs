//! Property: corrupt input never panics a parser.
//!
//! The decode surfaces (text stream parser, chunked container reader) are
//! written panic-free — enforced statically by `cargo run -p xtask -- lint`
//! — and these properties exercise the same guarantee dynamically: any
//! truncation, bit flip or garbage prefix must surface as a typed error
//! (with a line number for text input) or parse to something valid, never
//! unwind.

use std::io::Cursor;

use proptest::prelude::*;
use trace_container::{encode_app_container, ChunkSpec};
use trace_format::write_app_trace;
use trace_reduce::{Method, MethodConfig};
use trace_sim::specgen::{trace_from_specs, SegmentSpec};
use trace_stream::{reduce_container_stream, reduce_stream, StreamError};

fn build_trace(rank_specs: &[Vec<SegmentSpec>]) -> trace_model::AppTrace {
    trace_from_specs("corrupttrace", rank_specs)
}

fn spec_strategy() -> impl Strategy<Value = Vec<Vec<(u8, u8, u16)>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..4, 0u8..4, 0u16..2000), 0..6),
        1..4,
    )
}

fn config() -> MethodConfig {
    MethodConfig::with_default_threshold(Method::AvgWave)
}

/// Asserts a text parse outcome is sane: success, or a format error whose
/// line number does not exceed the input's line count (structural errors
/// report line 0).
fn assert_text_outcome(result: Result<(), StreamError>, input: &[u8]) {
    if let Err(err) = result {
        if let Some(format_err) = err.as_format() {
            let lines = input.iter().filter(|&&b| b == b'\n').count() + 1;
            assert!(
                format_err.line <= lines,
                "line {} out of range for {} lines",
                format_err.line,
                lines
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn truncated_text_never_panics(
        rank_specs in spec_strategy(),
        cut_seed in any::<usize>(),
    ) {
        let text = write_app_trace(&build_trace(&rank_specs));
        let bytes = text.as_bytes();
        let cut = cut_seed % (bytes.len() + 1);
        let truncated = &bytes[..cut];
        let result = reduce_stream(config(), Cursor::new(truncated)).map(|_| ());
        if cut < bytes.len() {
            prop_assert!(result.is_err(), "truncation at {cut} must not parse");
        }
        assert_text_outcome(result, truncated);
    }

    #[test]
    fn bit_flipped_text_never_panics(
        rank_specs in spec_strategy(),
        pos_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let text = write_app_trace(&build_trace(&rank_specs));
        let mut bytes = text.into_bytes();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= 1 << bit;
        let result = reduce_stream(config(), Cursor::new(&bytes[..])).map(|_| ());
        assert_text_outcome(result, &bytes);
    }

    #[test]
    fn garbage_prefix_text_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..256)) {
        // Arbitrary bytes are (at best) not a valid header; either way the
        // parser must return, not unwind.
        let _ = reduce_stream(config(), Cursor::new(&garbage[..]));
    }

    #[test]
    fn truncated_container_never_panics(
        rank_specs in spec_strategy(),
        cut_seed in any::<usize>(),
    ) {
        let bytes = encode_app_container(&build_trace(&rank_specs), ChunkSpec::with_segments(3));
        let cut = cut_seed % bytes.len();
        let result = reduce_container_stream(config(), Cursor::new(&bytes[..cut]));
        prop_assert!(result.is_err(), "truncation at {cut} of {} must not parse", bytes.len());
    }

    #[test]
    fn bit_flipped_container_never_panics(
        rank_specs in spec_strategy(),
        pos_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = encode_app_container(&build_trace(&rank_specs), ChunkSpec::with_segments(3));
        let reference = reduce_container_stream(config(), Cursor::new(&bytes[..]))
            .expect("pristine container parses");
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= 1 << bit;
        // A flip is either detected (CRC, magic, structure) or lands in a
        // byte that keeps the container decodable; both are fine — only a
        // panic or a silent wrong answer on detectable corruption is not.
        if let Ok(reduction) = reduce_container_stream(config(), Cursor::new(&bytes[..])) {
            let _ = (reduction, &reference);
        }
    }
}
