//! Property: streaming reduction of a chunked binary container ≡ in-memory
//! reduction of the decoded trace, for all nine paper methods, any chunk
//! size, any codec, and any shard count.

use std::io::Cursor;

use proptest::prelude::*;
use trace_container::{encode_app_container, ChunkSpec, Codec};
use trace_reduce::{Method, MethodConfig, Reducer};
use trace_sim::specgen::{trace_from_specs, SegmentSpec};
use trace_stream::{reduce_container_file, reduce_container_stream};

fn build_trace(rank_specs: &[Vec<SegmentSpec>]) -> trace_model::AppTrace {
    trace_from_specs("binprop", rank_specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn binary_streaming_equals_in_memory_for_every_method(rank_specs in prop::collection::vec(
        prop::collection::vec((0u8..4, 0u8..4, 0u16..2000), 0..10),
        1..4,
    ), segments_per_chunk in 1usize..8) {
        let app = build_trace(&rank_specs);
        prop_assert!(app.is_well_formed());
        // Compressed containers must be indistinguishable from uncompressed
        // ones to the reduction pipeline, for every method.
        for codec in [Codec::None, Codec::DeltaLz] {
            let spec = ChunkSpec::with_segments(segments_per_chunk).codec(codec);
            let bytes = encode_app_container(&app, spec);

            for method in Method::ALL {
                let config = MethodConfig::with_default_threshold(method);
                let in_memory = Reducer::new(config).reduce_app(&app);
                let streamed = reduce_container_stream(config, Cursor::new(&bytes))
                    .expect("generated containers decode");
                prop_assert_eq!(&streamed.reduced, &in_memory, "{} ({})", method, codec.name());
                prop_assert!(
                    streamed.stats.peak_resident_segments <= streamed.stats.stored + 1,
                    "{} ({}): peak {} vs stored {}",
                    method,
                    codec.name(),
                    streamed.stats.peak_resident_segments,
                    streamed.stats.stored
                );
            }
        }
    }

    #[test]
    fn index_sharded_ingestion_agrees_with_sequential(rank_specs in prop::collection::vec(
        prop::collection::vec((0u8..4, 0u8..4, 0u16..2000), 0..8),
        1..5,
    ), codec_id in 0u8..4) {
        let app = build_trace(&rank_specs);
        let codec = Codec::from_byte(codec_id).expect("grid covers the codec ids");
        let bytes = encode_app_container(&app, ChunkSpec::with_segments(3).codec(codec));
        let mut path = std::env::temp_dir();
        path.push(format!(
            "trace_stream_binprop_{}_{}.trc",
            std::process::id(),
            rank_specs.len()
        ));
        std::fs::write(&path, &bytes).unwrap();

        let config = MethodConfig::with_default_threshold(Method::AvgWave);
        let sequential = reduce_container_stream(config, Cursor::new(&bytes)).unwrap();
        for shards in [2usize, 3] {
            let sharded = reduce_container_file(config, &path, shards).unwrap();
            prop_assert_eq!(
                &sharded.reduced, &sequential.reduced,
                "{} shards ({})", shards, codec.name()
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn thresholded_methods_agree_across_the_threshold_grid_on_compressed_input() {
    let specs: Vec<Vec<SegmentSpec>> = vec![
        (0..20)
            .map(|i| (0u8, (i % 3) as u8, (i * 97 % 1500) as u16))
            .collect(),
        (0..15)
            .map(|i| (1u8, (i % 2) as u8, (i * 131 % 900) as u16))
            .collect(),
    ];
    let app = build_trace(&specs);
    let bytes = encode_app_container(&app, ChunkSpec::with_segments(4).codec(Codec::DeltaLz));
    for method in Method::ALL {
        for threshold in method.threshold_grid() {
            let config = MethodConfig::new(method, threshold);
            let in_memory = Reducer::new(config).reduce_app(&app);
            let streamed = reduce_container_stream(config, Cursor::new(&bytes)).unwrap();
            assert_eq!(streamed.reduced, in_memory, "{method} @ {threshold}");
        }
    }
}
