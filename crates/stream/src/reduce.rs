//! Online, bounded-memory reduction of a streamed trace.
//!
//! The reducer consumes [`StreamParser`] items and feeds each completed
//! segment straight into the stored-segments loop
//! ([`trace_reduce::OnlineRankReducer`]) as it arrives.  At any instant the
//! resident segment state is the stored representatives accumulated so far
//! plus at most one in-flight segment per active rank — never the full
//! event stream.  [`StreamStats::peak_resident_segments`] instruments
//! exactly that quantity so tests can assert the bound.

use std::io::BufRead;

use trace_model::{ReducedAppTrace, ReducedRankTrace, TraceRecord};
use trace_reduce::{MatchScratch, MatchStats, MethodConfig, OnlineRankReducer, OnlineSegmenter};

use crate::error::StreamError;
use crate::parser::{AppItem, StreamParser};
use crate::source::AppItemSource;

/// Instrumentation counters from one streaming reduction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Rank sections reduced (excludes ranks skipped by other shards).
    pub ranks: usize,
    /// Event records seen in reduced ranks.
    pub events: usize,
    /// Segments cut from the stream and fed to the reducer.
    pub segments: usize,
    /// Stored representative segments in the output.
    pub stored: usize,
    /// Segment executions in the output.
    pub execs: usize,
    /// Peak number of segments resident at once: stored representatives
    /// accumulated so far plus in-flight segments.  The streaming guarantee
    /// is `peak_resident_segments ≤ total stored + active ranks`, however
    /// long the trace is.  For sharded runs this is the *sum* of the
    /// per-worker peaks — an upper bound on the true concurrent total,
    /// since workers generally peak at different moments.
    pub peak_resident_segments: usize,
    /// Events encountered outside any segment (dropped).
    pub orphan_events: usize,
    /// Segments closed implicitly (missing or mismatched end markers).
    pub unterminated_segments: usize,
    /// Largest chunk payload buffered by any one reader, in bytes.  Zero
    /// for text streams (they buffer one line, not chunks); for monolithic
    /// v1 binary inputs this is the whole file, which is the point of the
    /// chunked container.  Merging keeps the per-reader maximum, so the
    /// concurrent total of a sharded run is at most `shards ×` this value.
    pub peak_chunk_bytes: usize,
    /// Similarity-matching counters from the cached fast path: candidate
    /// comparisons, prefilter rejects, early abandons and matches across
    /// every reduced rank.
    pub matching: MatchStats,
}

impl StreamStats {
    /// Merges counters from another (concurrently collected) run.  Counts
    /// add up exactly; the peaks are also summed, which over-approximates
    /// the true concurrent peak (each worker's resident set coexists with
    /// the others', but their maxima need not coincide in time), so the
    /// merged value is a safe upper bound rather than an observation.
    pub fn absorb(&mut self, other: &StreamStats) {
        self.ranks += other.ranks;
        self.events += other.events;
        self.segments += other.segments;
        self.stored += other.stored;
        self.execs += other.execs;
        self.peak_resident_segments += other.peak_resident_segments;
        self.orphan_events += other.orphan_events;
        self.unterminated_segments += other.unterminated_segments;
        self.peak_chunk_bytes = self.peak_chunk_bytes.max(other.peak_chunk_bytes);
        self.matching.absorb(&other.matching);
    }

    /// Drains these counters into an observability shard under the
    /// canonical `stream.*` (and nested `match.*`) metric names.  Call once
    /// on the merged total — not per worker — so sharded drivers don't
    /// double-count.
    pub fn record_into(&self, obs: &mut trace_obs::ObsShard) {
        if !obs.is_enabled() {
            return;
        }
        use trace_obs::names;
        obs.add(names::STREAM_RANKS, self.ranks as u64);
        obs.add(names::STREAM_EVENTS, self.events as u64);
        obs.add(names::STREAM_SEGMENTS, self.segments as u64);
        obs.add(names::STREAM_STORED, self.stored as u64);
        obs.add(names::STREAM_EXECS, self.execs as u64);
        obs.add(names::STREAM_ORPHAN_EVENTS, self.orphan_events as u64);
        obs.add(
            names::STREAM_UNTERMINATED_SEGMENTS,
            self.unterminated_segments as u64,
        );
        obs.gauge_max(
            names::STREAM_PEAK_RESIDENT_SEGMENTS,
            self.peak_resident_segments as u64,
        );
        obs.gauge_max(names::STREAM_PEAK_CHUNK_BYTES, self.peak_chunk_bytes as u64);
        self.matching.record_into(obs);
    }
}

/// The outcome of a streaming reduction: the reduced trace plus the
/// instrumentation counters.
#[derive(Clone, Debug)]
pub struct StreamReduction {
    /// The reduced application trace (identical to the in-memory path).
    pub reduced: ReducedAppTrace,
    /// Instrumentation counters.
    pub stats: StreamStats,
}

/// Reduces the rank sections selected by `take` (by 0-based section index),
/// skipping the rest, and returns `(index, reduced rank)` pairs in stream
/// order together with the instrumentation counters.  The source may be
/// the text parser or the binary container reader — the loop is identical.
///
/// Each processed rank section is bracketed by a
/// [`trace_obs::Stage::Rank`] span (the streaming loop fuses parse,
/// segment and match per record, so the rank is the finest honestly
/// separable unit — two clock reads per rank, nothing per record).  With a
/// disabled shard the reduction is identical — recording never steers.
pub(crate) fn reduce_selected_ranks_obs<S: AppItemSource>(
    config: MethodConfig,
    parser: &mut S,
    mut take: impl FnMut(usize) -> bool,
    obs: &mut trace_obs::ObsShard,
) -> Result<(Vec<(usize, ReducedRankTrace)>, StreamStats), StreamError> {
    let mut out: Vec<(usize, ReducedRankTrace)> = Vec::new();
    let mut stats = StreamStats::default();
    let mut next_index = 0usize;
    // Stored representatives retained by already-finished ranks; the final
    // ReducedAppTrace keeps them, so they count toward resident state.
    let mut stored_retained = 0usize;
    // One match scratch for the whole stream: the feature buffers are
    // threaded from rank to rank, so the matching loop stays allocation
    // free however many ranks flow past.
    let mut scratch = MatchScratch::new();
    let mut active: Option<(
        usize,
        OnlineSegmenter,
        OnlineRankReducer,
        trace_obs::SpanStart,
    )> = None;

    while let Some(item) = parser.next_item()? {
        match item {
            AppItem::RankStart(rank) => {
                let index = next_index;
                next_index += 1;
                if take(index) {
                    active = Some((
                        index,
                        OnlineSegmenter::new(),
                        OnlineRankReducer::with_scratch(config, rank, std::mem::take(&mut scratch)),
                        obs.start(),
                    ));
                } else {
                    parser.skip_current_rank()?;
                }
            }
            AppItem::Record(record) => {
                let (_, segmenter, reducer, _) = active
                    .as_mut()
                    .expect("records only arrive inside a processed rank");
                if matches!(record, TraceRecord::Event(_)) {
                    stats.events += 1;
                }
                if let Some(segment) = segmenter.push(&record) {
                    stats.segments += 1;
                    reducer.push_segment_obs(segment, obs);
                }
                let resident = stored_retained
                    + reducer.stored_count()
                    + usize::from(segmenter.has_open_segment());
                stats.peak_resident_segments = stats.peak_resident_segments.max(resident);
            }
            AppItem::RankEnd(_) => {
                let (index, mut segmenter, mut reducer, span) = active
                    .take()
                    .expect("END_RANK only arrives inside a processed rank");
                if let Some(segment) = segmenter.finish() {
                    stats.segments += 1;
                    reducer.push_segment_obs(segment, obs);
                }
                let seg_stats = segmenter.stats();
                stats.orphan_events += seg_stats.orphan_events;
                stats.unterminated_segments += seg_stats.unterminated_segments;
                stats.matching.absorb(&reducer.match_stats());
                let (reduced, returned) = reducer.finish_with_scratch();
                scratch = returned;
                stored_retained += reduced.stored_count();
                stats.peak_resident_segments = stats.peak_resident_segments.max(stored_retained);
                stats.ranks += 1;
                obs.end(trace_obs::Stage::Rank, span);
                out.push((index, reduced));
            }
        }
    }

    stats.stored = out.iter().map(|(_, r)| r.stored_count()).sum();
    stats.execs = out.iter().map(|(_, r)| r.exec_count()).sum();
    Ok((out, stats))
}

/// Reduces a full-trace text stream with one pass and bounded memory.
///
/// The output [`ReducedAppTrace`] is semantically identical to parsing the
/// whole trace and running [`trace_reduce::Reducer::reduce_app`] — both
/// paths drive the same online segmenter and stored-segments state
/// machines — but the full [`trace_model::AppTrace`] is never constructed.
pub fn reduce_stream<R: BufRead>(
    config: MethodConfig,
    reader: R,
) -> Result<StreamReduction, StreamError> {
    reduce_stream_obs(config, reader, &trace_obs::Recorder::disabled())
}

/// [`reduce_stream`] with observability: records per-rank
/// [`trace_obs::Stage::Rank`] spans and drains the final [`StreamStats`]
/// into `recorder`.  With a disabled recorder this is exactly
/// [`reduce_stream`] — the reduced output is bit-identical either way.
pub fn reduce_stream_obs<R: BufRead>(
    config: MethodConfig,
    reader: R,
    recorder: &trace_obs::Recorder,
) -> Result<StreamReduction, StreamError> {
    let mut obs = recorder.shard();
    let mut parser = StreamParser::new(reader)?;
    let tables = parser.tables().clone();
    let (ranks, stats) = reduce_selected_ranks_obs(config, &mut parser, |_| true, &mut obs)?;
    stats.record_into(&mut obs);
    obs.finish();
    Ok(StreamReduction {
        reduced: ReducedAppTrace {
            name: tables.name,
            regions: tables.regions,
            contexts: tables.contexts,
            ranks: ranks.into_iter().map(|(_, rank)| rank).collect(),
        },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use trace_format::write_app_trace;
    use trace_reduce::{Method, Reducer};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    #[test]
    fn streamed_reduction_equals_in_memory_reduction_for_every_method() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);
        for method in Method::ALL {
            let config = MethodConfig::with_default_threshold(method);
            let in_memory = Reducer::new(config).reduce_app(&app);
            let streamed = reduce_stream(config, Cursor::new(text.as_bytes())).unwrap();
            assert_eq!(streamed.reduced, in_memory, "{method}");
            assert_eq!(streamed.stats.execs, in_memory.total_execs(), "{method}");
            assert_eq!(streamed.stats.stored, in_memory.total_stored(), "{method}");
        }
    }

    #[test]
    fn stats_count_ranks_events_and_segments() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);
        let config = MethodConfig::with_default_threshold(Method::RelDiff);
        let streamed = reduce_stream(config, Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(streamed.stats.ranks, app.rank_count());
        assert_eq!(streamed.stats.events, app.total_events());
        let segment_instances: usize = app
            .ranks
            .iter()
            .map(|r| r.segment_instance_count())
            .sum::<usize>();
        assert_eq!(streamed.stats.segments, segment_instances);
        assert_eq!(streamed.stats.orphan_events, 0);
        assert_eq!(streamed.stats.unterminated_segments, 0);
    }

    #[test]
    fn resident_state_is_bounded_by_stored_plus_inflight() {
        // 200 identical iterations on one rank: one representative total,
        // so the peak resident count must stay at 2 (the representative
        // plus the in-flight segment) even though 200 segments stream by.
        let mut text = String::from("TRACEFORMAT 1\nTRACE RANKS 1 NAME loop\n");
        text.push_str("REGION 0 work\nCONTEXT 0 main.1\nRANK 0\n");
        let mut now = 0u64;
        for _ in 0..200 {
            text.push_str(&format!("SEG_BEGIN 0 {now}\n"));
            text.push_str(&format!("EVENT 0 {} {} 0 COMPUTE\n", now + 10, now + 90));
            text.push_str(&format!("SEG_END 0 {}\n", now + 100));
            now += 100;
        }
        text.push_str("END_RANK\nEND_TRACE\n");

        let config = MethodConfig::with_default_threshold(Method::RelDiff);
        let streamed = reduce_stream(config, Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(streamed.stats.segments, 200);
        assert_eq!(streamed.stats.stored, 1);
        assert_eq!(streamed.stats.peak_resident_segments, 2);
    }
}
