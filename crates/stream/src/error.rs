//! Error type for streaming reduction.

use std::fmt;
use std::io;

use trace_container::ContainerError;
use trace_format::FormatError;

/// An error encountered while streaming a trace: the underlying reader
/// failed, a text line did not parse, or a binary container chunk was
/// malformed.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line failed to parse or the trace structure is invalid.
    Format(FormatError),
    /// A chunked binary container was malformed (bad magic, CRC, …).
    Container(ContainerError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "trace stream i/o error: {e}"),
            StreamError::Format(e) => e.fmt(f),
            StreamError::Container(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Format(e) => Some(e),
            StreamError::Container(e) => Some(e),
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<FormatError> for StreamError {
    fn from(e: FormatError) -> Self {
        StreamError::Format(e)
    }
}

impl From<ContainerError> for StreamError {
    fn from(e: ContainerError) -> Self {
        StreamError::Container(e)
    }
}

impl StreamError {
    /// The format error, if this is a text parse failure.
    pub fn as_format(&self) -> Option<&FormatError> {
        match self {
            StreamError::Format(e) => Some(e),
            _ => None,
        }
    }

    /// The container error, if this is a binary container failure.
    pub fn as_container(&self) -> Option<&ContainerError> {
        match self {
            StreamError::Container(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_distinguishes_the_two_causes() {
        let io_err = StreamError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("i/o error"));
        assert!(io_err.as_format().is_none());
        let fmt_err = StreamError::from(FormatError::at(3, "bad"));
        assert!(fmt_err.to_string().contains("line 3"));
        assert_eq!(fmt_err.as_format().unwrap().line, 3);
        let container_err = StreamError::from(ContainerError::BadTrailer);
        assert!(container_err.as_container().is_some());
        assert!(container_err.as_format().is_none());
    }
}
