//! Error type for streaming reduction.

use std::fmt;
use std::io;

use trace_format::FormatError;

/// An error encountered while streaming a trace: either the underlying
/// reader failed or a line did not parse.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line failed to parse or the trace structure is invalid.
    Format(FormatError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "trace stream i/o error: {e}"),
            StreamError::Format(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Format(e) => Some(e),
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<FormatError> for StreamError {
    fn from(e: FormatError) -> Self {
        StreamError::Format(e)
    }
}

impl StreamError {
    /// The format error, if this is a parse failure.
    pub fn as_format(&self) -> Option<&FormatError> {
        match self {
            StreamError::Format(e) => Some(e),
            StreamError::Io(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_distinguishes_the_two_causes() {
        let io_err = StreamError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("i/o error"));
        assert!(io_err.as_format().is_none());
        let fmt_err = StreamError::from(FormatError::at(3, "bad"));
        assert!(fmt_err.to_string().contains("line 3"));
        assert_eq!(fmt_err.as_format().unwrap().line, 3);
    }
}
