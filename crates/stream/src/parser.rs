//! Incremental, line-oriented parsing of full-trace text files.
//!
//! [`StreamParser`] pulls one record at a time from any [`BufRead`] source,
//! reusing the exact line-level grammar of `trace_format` (the
//! [`trace_format::record`] module), so it accepts precisely the same
//! language as the in-memory [`trace_format::parse_app_trace`] — without
//! ever holding more than one line of the file in memory.

use std::io::{self, BufRead};

use trace_format::record::{parse_app_body_line, AppBodyLine, HeaderBuilder, TraceTables};
use trace_format::write::APP_HEADER;
use trace_format::FormatError;
use trace_model::{Rank, TraceRecord};

use crate::error::StreamError;

/// Reads meaningful lines (blank and `#`-comment lines skipped) from a
/// buffered source, tracking 1-based line numbers.  Only one line is
/// buffered at a time.
struct LineReader<R> {
    inner: R,
    buf: String,
    line_no: usize,
}

impl<R: BufRead> LineReader<R> {
    fn new(inner: R) -> Self {
        LineReader {
            inner,
            buf: String::new(),
            line_no: 0,
        }
    }

    /// Advances to the next meaningful line, returning its number (the text
    /// is available via [`LineReader::current`]) or `None` at end of input.
    /// Line classification is the shared rule in
    /// [`trace_format::record::meaningful_line`].
    fn next_line(&mut self) -> io::Result<Option<usize>> {
        loop {
            self.buf.clear();
            if self.inner.read_line(&mut self.buf)? == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            if trace_format::record::meaningful_line(&self.buf).is_some() {
                return Ok(Some(self.line_no));
            }
        }
    }

    /// The text of the line [`LineReader::next_line`] advanced to.
    /// `next_line` only stops on meaningful lines, so the fallback empty
    /// string is never produced in practice; an empty line simply fails the
    /// caller's grammar with a parse error instead of panicking here.
    fn current(&self) -> &str {
        trace_format::record::meaningful_line(&self.buf).unwrap_or("")
    }
}

/// One item pulled from a full-trace stream.
#[derive(Clone, Debug, PartialEq)]
pub enum AppItem {
    /// A `RANK <id>` section opened.
    RankStart(Rank),
    /// A record inside the open rank section.
    Record(TraceRecord),
    /// The open rank section closed.
    RankEnd(Rank),
}

#[derive(Clone, Copy, Debug)]
enum State {
    Body,
    InRank(Rank),
    Done,
}

/// Pull parser for the full-trace text format over any [`BufRead`] source.
///
/// Construction parses the magic line and the header tables; each
/// [`StreamParser::next_item`] call then yields one rank boundary or record.
/// `Ok(None)` means the `END_TRACE` trailer was reached and the declared
/// rank count matched.
pub struct StreamParser<R> {
    lines: LineReader<R>,
    tables: TraceTables,
    /// First body line, already consumed while detecting the header's end.
    pending: Option<(usize, String)>,
    state: State,
    ranks_seen: usize,
}

impl<R: BufRead> StreamParser<R> {
    /// Reads the magic line and header tables from `reader`.
    pub fn new(reader: R) -> Result<Self, StreamError> {
        let mut lines = LineReader::new(reader);
        let line_no = lines
            .next_line()?
            .ok_or_else(|| FormatError::structural("unexpected end of input, expected header"))?;
        let first = lines.current();
        if first != APP_HEADER {
            return Err(FormatError::at(
                line_no,
                format!("expected header {APP_HEADER:?}, found {first:?}"),
            )
            .into());
        }

        let mut builder = HeaderBuilder::new();
        let pending;
        loop {
            let Some(line_no) = lines.next_line()? else {
                return Err(FormatError::structural(format!(
                    "unexpected end of input, expected {}",
                    builder.expecting()
                ))
                .into());
            };
            let line = lines.current();
            if !builder.feed(line_no, line)? {
                pending = Some((line_no, line.to_string()));
                break;
            }
        }

        Ok(StreamParser {
            lines,
            tables: builder.finish()?,
            pending,
            state: State::Body,
            ranks_seen: 0,
        })
    }

    /// The header tables (program name, declared rank count, region and
    /// context names).
    pub fn tables(&self) -> &TraceTables {
        &self.tables
    }

    /// Number of complete rank sections seen so far.
    pub fn ranks_seen(&self) -> usize {
        self.ranks_seen
    }

    /// Pulls the next item, or `Ok(None)` once the trailer was consumed.
    pub fn next_item(&mut self) -> Result<Option<AppItem>, StreamError> {
        let in_rank = matches!(self.state, State::InRank(_));
        if matches!(self.state, State::Done) {
            return Ok(None);
        }

        let parsed = if let Some((line_no, line)) = self.pending.take() {
            parse_app_body_line(&self.tables, line_no, &line, in_rank)?
        } else {
            let what = if in_rank {
                "rank records or END_RANK"
            } else {
                "RANK or END_TRACE"
            };
            let Some(line_no) = self.lines.next_line()? else {
                return Err(FormatError::structural(format!(
                    "unexpected end of input, expected {what}"
                ))
                .into());
            };
            parse_app_body_line(&self.tables, line_no, self.lines.current(), in_rank)?
        };

        match parsed {
            AppBodyLine::RankStart(rank) => {
                self.state = State::InRank(rank);
                Ok(Some(AppItem::RankStart(rank)))
            }
            AppBodyLine::Record(record) => Ok(Some(AppItem::Record(record))),
            AppBodyLine::EndRank => {
                // `parse_app_body_line` only yields END_RANK when told a
                // rank section is open; report a parser bug as a structural
                // error rather than trusting the invariant with a panic.
                let State::InRank(rank) = self.state else {
                    return Err(FormatError::structural("END_RANK outside a rank section").into());
                };
                self.state = State::Body;
                self.ranks_seen += 1;
                Ok(Some(AppItem::RankEnd(rank)))
            }
            AppBodyLine::EndTrace => {
                if self.ranks_seen != self.tables.declared_ranks {
                    return Err(FormatError::structural(format!(
                        "header declares {} ranks but {} rank sections were found",
                        self.tables.declared_ranks, self.ranks_seen
                    ))
                    .into());
                }
                self.state = State::Done;
                Ok(None)
            }
        }
    }

    /// Skips the remainder of the open rank section without parsing its
    /// record payloads (the sharded driver uses this to pass over ranks
    /// owned by other workers).  Returns the skipped rank.
    ///
    /// Section structure is still enforced — a stray `RANK`/`END_TRACE`
    /// inside the section is an error — but record lines are not validated.
    pub fn skip_current_rank(&mut self) -> Result<Rank, StreamError> {
        let State::InRank(rank) = self.state else {
            return Err(
                FormatError::structural("skip_current_rank called outside a rank section").into(),
            );
        };
        debug_assert!(self.pending.is_none(), "pending line inside a rank section");
        loop {
            let Some(line_no) = self.lines.next_line()? else {
                return Err(FormatError::structural(
                    "unexpected end of input, expected rank records or END_RANK",
                )
                .into());
            };
            let line = self.lines.current();
            if line == "END_RANK" {
                self.state = State::Body;
                self.ranks_seen += 1;
                return Ok(rank);
            }
            if line.starts_with("RANK") || line == "END_TRACE" {
                return Err(FormatError::at(
                    line_no,
                    format!("unexpected record {line:?} inside a rank section"),
                )
                .into());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use trace_format::write_app_trace;
    use trace_model::{AppTrace, RankTrace};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    fn parser_for(text: &str) -> StreamParser<Cursor<&[u8]>> {
        StreamParser::new(Cursor::new(text.as_bytes())).expect("valid trace")
    }

    #[test]
    fn streamed_items_rebuild_the_exact_app_trace() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);
        let mut parser = parser_for(&text);
        let tables = parser.tables().clone();
        let mut rebuilt = AppTrace {
            name: tables.name.clone(),
            regions: tables.regions.clone(),
            contexts: tables.contexts.clone(),
            ranks: Vec::new(),
        };
        let mut open: Option<RankTrace> = None;
        while let Some(item) = parser.next_item().unwrap() {
            match item {
                AppItem::RankStart(rank) => open = Some(RankTrace::new(rank)),
                AppItem::Record(record) => open.as_mut().unwrap().push(record),
                AppItem::RankEnd(_) => rebuilt.ranks.push(open.take().unwrap()),
            }
        }
        assert_eq!(rebuilt, app);
        assert_eq!(parser.ranks_seen(), app.rank_count());
        // The stream is exhausted and stays exhausted.
        assert_eq!(parser.next_item().unwrap(), None);
    }

    #[test]
    fn skip_current_rank_passes_over_sections() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);
        let mut parser = parser_for(&text);
        let mut skipped = 0;
        while let Some(item) = parser.next_item().unwrap() {
            if let AppItem::RankStart(rank) = item {
                assert_eq!(parser.skip_current_rank().unwrap(), rank);
                skipped += 1;
            }
        }
        assert_eq!(skipped, app.rank_count());
    }

    #[test]
    fn errors_match_the_in_memory_parser() {
        // Same malformed inputs as the parse.rs tests: the stream parser
        // reports the same line numbers and messages.
        let Err(err) = StreamParser::new(Cursor::new(b"BOGUS 9\n".as_slice())) else {
            panic!("bad magic line must fail");
        };
        assert_eq!(err.as_format().unwrap().line, 1);

        let truncated = "TRACEFORMAT 1\nTRACE RANKS 1 NAME x\nRANK 0\n";
        let mut parser = parser_for(truncated);
        let mut err = None;
        loop {
            match parser.next_item() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        let err = err.expect("truncated input must fail");
        assert_eq!(err.as_format().unwrap().line, 0, "structural: {err}");

        let mismatch = "TRACEFORMAT 1\nTRACE RANKS 2 NAME x\nRANK 0\nEND_RANK\nEND_TRACE\n";
        let mut parser = parser_for(mismatch);
        let err = loop {
            match parser.next_item() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("rank-count mismatch must fail"),
                Err(e) => break e,
            }
        };
        assert!(
            err.as_format().unwrap().message.contains("rank sections"),
            "{err}"
        );
    }

    #[test]
    fn comments_and_blank_lines_are_skipped_with_correct_numbering() {
        let text = "\
TRACEFORMAT 1

# a comment
TRACE RANKS 1 NAME x
CONTEXT 0 main.1
RANK 0
SEG_BEGIN 0 0
SEG_END 0 5
END_RANK
END_TRACE
";
        let mut parser = parser_for(text);
        let mut records = 0;
        while let Some(item) = parser.next_item().unwrap() {
            if matches!(item, AppItem::Record(_)) {
                records += 1;
            }
        }
        assert_eq!(records, 2);
    }
}
