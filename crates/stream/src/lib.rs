#![forbid(unsafe_code)]
//! Streaming, bounded-memory trace reduction.
//!
//! The paper's stored-segments reducer exists because full event traces are
//! too large to keep around — yet reducing a trace by first materializing a
//! full [`trace_model::AppTrace`] reintroduces exactly that memory wall.
//! This crate removes it for both trace formats:
//!
//! * [`parser::StreamParser`] — an incremental, line-oriented pull parser
//!   over any [`std::io::BufRead`] source, built on the same record grammar
//!   as `trace_format` (one line resident at a time).
//! * [`binary::ContainerSource`] — the same item stream pulled from a
//!   chunked binary container (`.trc` v2, the `trace_container` crate),
//!   one CRC-checked chunk resident at a time.  Both sources sit behind
//!   the [`source::AppItemSource`] trait, so one reduction loop serves
//!   both formats.
//! * [`reduce::reduce_stream`] — feeds each completed segment straight into
//!   the stored-segments loop ([`trace_reduce::OnlineRankReducer`]) as it
//!   arrives.  Resident segment state is O(stored representatives + one
//!   in-flight segment per active rank), never O(total events), and the
//!   output is identical to the in-memory [`trace_reduce::Reducer`] —
//!   both paths drive the same state machines.
//! * [`shard::reduce_stream_sharded`] / [`shard::reduce_trace_file`] —
//!   batch rank sections across crossbeam worker threads
//!   ([`trace_reduce::scoped_workers`]), each worker streaming its own
//!   reader and skipping the sections owned by other workers.
//! * [`binary::reduce_container_file`] — the binary counterpart goes
//!   further: workers *seek* straight to their rank sections via the
//!   container's index footer instead of scanning the file.
//!   [`binary::reduce_any_file`] autodetects text, monolithic v1 and
//!   container v2 inputs by magic bytes.
//!
//! # Quick start
//!
//! ```
//! use std::io::Cursor;
//! use trace_format::write_app_trace;
//! use trace_reduce::{Method, MethodConfig, Reducer};
//! use trace_sim::{SizePreset, Workload, WorkloadKind};
//! use trace_stream::reduce_stream;
//!
//! let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
//! let text = write_app_trace(&app);
//!
//! let config = MethodConfig::with_default_threshold(Method::AvgWave);
//! let streamed = reduce_stream(config, Cursor::new(text.as_bytes())).unwrap();
//!
//! // Identical to the in-memory path, with bounded resident state.
//! assert_eq!(streamed.reduced, Reducer::new(config).reduce_app(&app));
//! assert!(streamed.stats.peak_resident_segments <= streamed.stats.stored + 1);
//! ```

#![warn(missing_docs)]

pub mod binary;
pub mod error;
pub mod parser;
pub mod reduce;
pub mod shard;
pub mod source;

pub use binary::{
    detect_input, reduce_any_file, reduce_any_file_obs, reduce_container_file,
    reduce_container_file_obs, reduce_container_stream, reduce_container_stream_obs,
    ContainerSource, TraceInputKind,
};
pub use error::StreamError;
pub use parser::{AppItem, StreamParser};
pub use reduce::{reduce_stream, reduce_stream_obs, StreamReduction, StreamStats};
pub use shard::{
    reduce_stream_sharded, reduce_stream_sharded_obs, reduce_trace_file, reduce_trace_file_obs,
};
pub use source::AppItemSource;
