//! Sharded streaming reduction: ranks batched across worker threads.
//!
//! Every worker opens its own reader over the same trace (a fresh
//! [`std::fs::File`] handle, a cloned in-memory cursor, …), stream-parses
//! it, and reduces only the rank sections assigned to it (`section index %
//! shards == worker`), skipping the others without parsing their record
//! payloads.  The per-rank reductions are merged back in stream order, so
//! the result is bit-identical to the sequential streaming path — sharding
//! changes wall-clock time, never the output.  Workers run on the same
//! crossbeam scoped-thread fan-out as the in-memory parallel reducer
//! ([`trace_reduce::scoped_workers`]).

use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

use parking_lot::Mutex;
use trace_format::record::TraceTables;
use trace_model::{ReducedAppTrace, ReducedRankTrace};
use trace_reduce::{scoped_workers, MethodConfig};

use crate::error::StreamError;
use crate::parser::StreamParser;
use crate::reduce::{reduce_selected_ranks_obs, reduce_stream_obs, StreamReduction, StreamStats};

/// Reduces a trace stream with `shards` worker threads, each reading its
/// own source from `open(worker_index)`.
///
/// All readers must yield the same bytes; `shards <= 1` falls back to the
/// single-pass [`crate::reduce_stream`].
pub fn reduce_stream_sharded<R, F>(
    config: MethodConfig,
    shards: usize,
    open: F,
) -> Result<StreamReduction, StreamError>
where
    R: BufRead,
    F: Fn(usize) -> io::Result<R> + Sync,
{
    reduce_stream_sharded_obs(config, shards, open, &trace_obs::Recorder::disabled())
}

/// [`reduce_stream_sharded`] with observability: each worker records
/// per-rank [`trace_obs::Stage::Rank`] spans into its own recorder shard,
/// and the merged [`StreamStats`] are drained into `recorder` once at the
/// end (so counters are never double-counted).  With a disabled recorder
/// this is exactly [`reduce_stream_sharded`].
pub fn reduce_stream_sharded_obs<R, F>(
    config: MethodConfig,
    shards: usize,
    open: F,
    recorder: &trace_obs::Recorder,
) -> Result<StreamReduction, StreamError>
where
    R: BufRead,
    F: Fn(usize) -> io::Result<R> + Sync,
{
    if shards <= 1 {
        return reduce_stream_obs(config, open(0)?, recorder);
    }

    type WorkerOut = (Vec<(usize, ReducedRankTrace)>, StreamStats, TraceTables);
    let slots: Vec<Mutex<Option<Result<WorkerOut, StreamError>>>> =
        (0..shards).map(|_| Mutex::new(None)).collect();

    scoped_workers(shards, |worker| {
        let result = (|| {
            let mut obs = recorder.shard();
            let mut parser = StreamParser::new(open(worker)?)?;
            let tables = parser.tables().clone();
            let (ranks, stats) = reduce_selected_ranks_obs(
                config,
                &mut parser,
                |index| index % shards == worker,
                &mut obs,
            )?;
            obs.finish();
            Ok((ranks, stats, tables))
        })();
        *slots[worker].lock() = Some(result);
    });

    let mut all: Vec<(usize, ReducedRankTrace)> = Vec::new();
    let mut stats = StreamStats::default();
    let mut tables: Option<TraceTables> = None;
    for slot in slots {
        let (ranks, worker_stats, worker_tables) =
            slot.into_inner().expect("every worker fills its slot")?;
        all.extend(ranks);
        stats.absorb(&worker_stats);
        tables.get_or_insert(worker_tables);
    }
    let tables = tables.expect("at least one worker ran");

    all.sort_by_key(|(index, _)| *index);
    debug_assert!(
        all.iter().enumerate().all(|(i, (index, _))| i == *index),
        "every rank section is reduced exactly once"
    );

    let mut obs = recorder.shard();
    stats.record_into(&mut obs);
    obs.finish();

    Ok(StreamReduction {
        reduced: ReducedAppTrace {
            name: tables.name,
            regions: tables.regions,
            contexts: tables.contexts,
            ranks: all.into_iter().map(|(_, rank)| rank).collect(),
        },
        stats,
    })
}

/// Reduces a trace file with `shards` worker threads, each with its own
/// buffered file handle.
pub fn reduce_trace_file(
    config: MethodConfig,
    path: impl AsRef<Path>,
    shards: usize,
) -> Result<StreamReduction, StreamError> {
    reduce_trace_file_obs(config, path, shards, &trace_obs::Recorder::disabled())
}

/// [`reduce_trace_file`] with observability (see
/// [`reduce_stream_sharded_obs`]).
pub fn reduce_trace_file_obs(
    config: MethodConfig,
    path: impl AsRef<Path>,
    shards: usize,
    recorder: &trace_obs::Recorder,
) -> Result<StreamReduction, StreamError> {
    let path = path.as_ref();
    reduce_stream_sharded_obs(
        config,
        shards.max(1),
        |_| File::open(path).map(BufReader::new),
        recorder,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use trace_format::write_app_trace;
    use trace_reduce::{Method, Reducer};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    #[test]
    fn sharded_reduction_is_identical_to_sequential_for_any_shard_count() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let text = write_app_trace(&app);
        for method in [Method::AvgWave, Method::RelDiff, Method::IterAvg] {
            let config = MethodConfig::with_default_threshold(method);
            let in_memory = Reducer::new(config).reduce_app(&app);
            for shards in [1, 2, 3, 8, 64] {
                let sharded = reduce_stream_sharded(config, shards, |_| {
                    Ok(Cursor::new(text.as_bytes().to_vec()))
                })
                .unwrap();
                assert_eq!(sharded.reduced, in_memory, "{method} with {shards} shards");
                assert_eq!(sharded.stats.ranks, app.rank_count());
                assert_eq!(sharded.stats.events, app.total_events());
            }
        }
    }

    #[test]
    fn file_driver_round_trips_through_a_real_file() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let mut path = std::env::temp_dir();
        path.push(format!("trace_stream_shard_{}.txt", std::process::id()));
        std::fs::write(&path, write_app_trace(&app)).unwrap();

        let config = MethodConfig::with_default_threshold(Method::Euclidean);
        let expected = Reducer::new(config).reduce_app(&app);
        for shards in [1, 4] {
            let result = reduce_trace_file(config, &path, shards).unwrap();
            assert_eq!(result.reduced, expected, "{shards} shards");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn worker_errors_are_reported() {
        let err = reduce_stream_sharded(
            MethodConfig::with_default_threshold(Method::RelDiff),
            3,
            |_| Ok(Cursor::new(b"BOGUS\n".to_vec())),
        )
        .unwrap_err();
        assert!(err.as_format().is_some(), "{err}");
    }
}
