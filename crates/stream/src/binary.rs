//! Streaming and index-sharded reduction of chunked binary containers.
//!
//! [`ContainerSource`] adapts `trace_container::ChunkReader` to the
//! [`AppItemSource`] trait, so the same online reduction loop that drives
//! the text parser consumes `.trc` v2 files with O(one chunk) resident
//! payload.  [`reduce_container_file`] goes one step further than the text
//! sharding can: the container's index footer maps every rank section to a
//! byte offset, so workers *seek* straight to their sections instead of
//! scanning and skipping the whole file — cross-shard file-level
//! parallelism with no redundant reads.  [`reduce_any_file`] autodetects
//! text, monolithic v1 and chunked v2 inputs by their magic bytes.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use parking_lot::Mutex;
use trace_container::{
    read_index, ChunkReader, ContainerError, ContainerItem, PayloadKind, Preamble, CONTAINER_MAGIC,
};
use trace_model::codec::APP_TRACE_MAGIC;
use trace_model::{Rank, ReducedAppTrace, ReducedRankTrace};
use trace_reduce::{scoped_workers, MethodConfig, Reducer};

use crate::error::StreamError;
use crate::parser::AppItem;
use crate::reduce::{reduce_selected_ranks_obs, StreamReduction, StreamStats};
use crate::shard::reduce_trace_file_obs;
use crate::source::AppItemSource;

/// [`AppItemSource`] over a chunked binary container.
pub struct ContainerSource<R> {
    inner: ChunkReader<R>,
}

impl<R: Read> ContainerSource<R> {
    /// Opens a whole app-trace container (header + preamble).
    pub fn new(reader: R) -> Result<Self, StreamError> {
        Ok(ContainerSource {
            inner: ChunkReader::new(reader)?,
        })
    }

    /// Resumes at one rank section located via the index footer.
    pub fn section(reader: R, offset: u64) -> Self {
        ContainerSource {
            inner: ChunkReader::section(reader, offset),
        }
    }

    /// The preamble tables (whole-file mode only).
    pub fn preamble(&self) -> Option<&Preamble> {
        self.inner.preamble()
    }

    /// Largest chunk payload buffered so far, in bytes.
    pub fn peak_chunk_bytes(&self) -> usize {
        self.inner.peak_chunk_bytes()
    }

    /// Attaches an observability shard to the underlying chunk reader, so
    /// chunk reads record `chunk_io`/`compress` spans and counters.
    pub fn set_obs(&mut self, obs: trace_obs::ObsShard) {
        self.inner.set_obs(obs);
    }
}

impl<R: Read> AppItemSource for ContainerSource<R> {
    fn next_item(&mut self) -> Result<Option<AppItem>, StreamError> {
        Ok(self.inner.next_item()?.map(|item| match item {
            ContainerItem::RankStart(rank) => AppItem::RankStart(rank),
            ContainerItem::Record(record) => AppItem::Record(record),
            ContainerItem::RankEnd(rank) => AppItem::RankEnd(rank),
        }))
    }

    fn skip_current_rank(&mut self) -> Result<Rank, StreamError> {
        Ok(self.inner.skip_current_rank()?)
    }
}

/// Reduces an app-trace container stream in one pass with bounded memory:
/// the resident state is the stored representatives, at most one in-flight
/// segment, and one decoded chunk payload.
pub fn reduce_container_stream<R: Read>(
    config: MethodConfig,
    reader: R,
) -> Result<StreamReduction, StreamError> {
    reduce_container_stream_obs(config, reader, &trace_obs::Recorder::disabled())
}

/// [`reduce_container_stream`] with observability: the chunk reader records
/// per-chunk `chunk_io`/`compress` spans, the reduction loop records
/// per-rank `rank` spans, and the final [`StreamStats`] drain into
/// `recorder`.  With a disabled recorder this is exactly
/// [`reduce_container_stream`].
pub fn reduce_container_stream_obs<R: Read>(
    config: MethodConfig,
    reader: R,
    recorder: &trace_obs::Recorder,
) -> Result<StreamReduction, StreamError> {
    let mut obs = recorder.shard();
    let mut source = ContainerSource::new(reader)?;
    source.set_obs(recorder.shard());
    let Some(preamble) = source.preamble().cloned() else {
        return Err(StreamError::Container(ContainerError::UnexpectedChunk {
            expected: "a PREAMBLE chunk",
            found: "no preamble before the first rank section",
        }));
    };
    let (ranks, mut stats) = reduce_selected_ranks_obs(config, &mut source, |_| true, &mut obs)?;
    stats.peak_chunk_bytes = source.peak_chunk_bytes();
    stats.record_into(&mut obs);
    obs.finish();
    Ok(StreamReduction {
        reduced: ReducedAppTrace {
            name: preamble.name,
            regions: preamble.regions,
            contexts: preamble.contexts,
            ranks: ranks.into_iter().map(|(_, rank)| rank).collect(),
        },
        stats,
    })
}

/// Reduces a container file with `shards` workers, each seeking directly
/// to the rank sections assigned to it (`section index % shards`) via the
/// index footer.  Output is bit-identical to the sequential
/// [`reduce_container_stream`]; only wall-clock time changes.
pub fn reduce_container_file(
    config: MethodConfig,
    path: impl AsRef<Path>,
    shards: usize,
) -> Result<StreamReduction, StreamError> {
    reduce_container_file_obs(config, path, shards, &trace_obs::Recorder::disabled())
}

/// [`reduce_container_file`] with observability: every worker's chunk
/// reader and reduction loop record into their own recorder shards, and
/// the merged [`StreamStats`] drain into `recorder` once.  With a disabled
/// recorder this is exactly [`reduce_container_file`].
pub fn reduce_container_file_obs(
    config: MethodConfig,
    path: impl AsRef<Path>,
    shards: usize,
    recorder: &trace_obs::Recorder,
) -> Result<StreamReduction, StreamError> {
    let path = path.as_ref();
    if shards <= 1 {
        return reduce_container_stream_obs(config, BufReader::new(File::open(path)?), recorder);
    }

    let mut file = File::open(path)?;
    let index = read_index(&mut file)?;
    if index.kind == PayloadKind::Reduced {
        return Err(StreamError::Container(ContainerError::UnexpectedChunk {
            expected: "an app-trace container",
            found: "a reduced-trace container",
        }));
    }
    file.seek(SeekFrom::Start(0))?;
    let preamble = {
        let source = ContainerSource::new(BufReader::new(file))?;
        let Some(preamble) = source.preamble().cloned() else {
            return Err(StreamError::Container(ContainerError::UnexpectedChunk {
                expected: "a PREAMBLE chunk",
                found: "no preamble before the first rank section",
            }));
        };
        preamble
    };
    // The sequential reader validates this when it reaches the INDEX
    // chunk; the sharded path never scans that far, so a short index must
    // be rejected here or ranks would silently drop from the output.
    if index.sections.len() != preamble.declared_ranks {
        return Err(StreamError::Container(ContainerError::CountMismatch {
            what: "rank sections",
            declared: preamble.declared_ranks as u64,
            found: index.sections.len() as u64,
        }));
    }

    let workers = shards.min(index.sections.len()).max(1);
    type WorkerOut = (Vec<(usize, ReducedRankTrace)>, StreamStats);
    let slots: Vec<Mutex<Option<Result<WorkerOut, StreamError>>>> =
        (0..workers).map(|_| Mutex::new(None)).collect();

    scoped_workers(workers, |worker| {
        let result = (|| {
            let file = File::open(path)?;
            let mut obs = recorder.shard();
            let mut out: Vec<(usize, ReducedRankTrace)> = Vec::new();
            let mut stats = StreamStats::default();
            for (section_index, entry) in index
                .sections
                .iter()
                .enumerate()
                .filter(|(i, _)| i % workers == worker)
            {
                // `&File` implements `Read + Seek`, so every section gets a
                // fresh buffered cursor over the worker's single handle.
                let mut handle = &file;
                handle.seek(SeekFrom::Start(entry.offset))?;
                let mut source = ContainerSource::section(BufReader::new(handle), entry.offset);
                source.set_obs(recorder.shard());
                let (ranks, mut section_stats) =
                    reduce_selected_ranks_obs(config, &mut source, |_| true, &mut obs)?;
                section_stats.peak_chunk_bytes = source.peak_chunk_bytes();
                stats.absorb(&section_stats);
                out.extend(ranks.into_iter().map(|(_, rank)| (section_index, rank)));
            }
            obs.finish();
            Ok((out, stats))
        })();
        // lint:allow(indexing) -- worker < workers == slots.len() by construction
        *slots[worker].lock() = Some(result);
    });

    let mut all: Vec<(usize, ReducedRankTrace)> = Vec::new();
    let mut stats = StreamStats::default();
    for slot in slots {
        // `scoped_workers` joins every worker before returning and each
        // worker unconditionally fills its slot; an empty slot means a
        // worker died, which surfaces as an error rather than a panic.
        let (ranks, worker_stats) = slot.into_inner().unwrap_or_else(|| {
            Err(std::io::Error::other("reduction worker left no result").into())
        })?;
        all.extend(ranks);
        stats.absorb(&worker_stats);
    }
    all.sort_by_key(|(index, _)| *index);
    debug_assert!(
        all.iter().enumerate().all(|(i, (index, _))| i == *index),
        "every indexed section is reduced exactly once"
    );

    let mut obs = recorder.shard();
    stats.record_into(&mut obs);
    obs.finish();

    Ok(StreamReduction {
        reduced: ReducedAppTrace {
            name: preamble.name,
            regions: preamble.regions,
            contexts: preamble.contexts,
            ranks: all.into_iter().map(|(_, rank)| rank).collect(),
        },
        stats,
    })
}

/// What kind of trace input a file holds, detected from its magic bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceInputKind {
    /// The line-oriented text format (`TRACEFORMAT 1` header).
    Text,
    /// A monolithic v1 binary file (`TRCF` magic) — decodable only as a
    /// whole buffer.
    BinaryV1,
    /// A chunked v2 container (`TRC2` magic) — streamable and seekable.
    ContainerV2,
}

impl TraceInputKind {
    /// Short human-readable label for CLI output.
    pub fn label(self) -> &'static str {
        match self {
            TraceInputKind::Text => "text",
            TraceInputKind::BinaryV1 => "binary v1 (monolithic)",
            TraceInputKind::ContainerV2 => "container v2 (chunked)",
        }
    }
}

/// Detects the input kind from the first four bytes of `path`.  Anything
/// that is not a known binary magic is treated as text, so text parse
/// errors keep their precise line-level diagnostics.
pub fn detect_input(path: impl AsRef<Path>) -> Result<TraceInputKind, StreamError> {
    let file = File::open(path.as_ref())?;
    let mut magic = Vec::with_capacity(4);
    file.take(4).read_to_end(&mut magic)?;
    Ok(match magic.as_slice() {
        m if m == CONTAINER_MAGIC => TraceInputKind::ContainerV2,
        m if m == APP_TRACE_MAGIC => TraceInputKind::BinaryV1,
        _ => TraceInputKind::Text,
    })
}

/// Reduces a trace file of any supported format, autodetected by magic:
/// text and v2 containers stream with bounded memory (`shards` workers);
/// monolithic v1 files fall back to decoding the whole buffer and reducing
/// in memory, with stats reflecting that everything was resident.
pub fn reduce_any_file(
    config: MethodConfig,
    path: impl AsRef<Path>,
    shards: usize,
) -> Result<(StreamReduction, TraceInputKind), StreamError> {
    reduce_any_file_obs(config, path, shards, &trace_obs::Recorder::disabled())
}

/// [`reduce_any_file`] with observability, threading `recorder` through
/// whichever driver the magic bytes select.  With a disabled recorder this
/// is exactly [`reduce_any_file`] — same dispatch, bit-identical output.
pub fn reduce_any_file_obs(
    config: MethodConfig,
    path: impl AsRef<Path>,
    shards: usize,
    recorder: &trace_obs::Recorder,
) -> Result<(StreamReduction, TraceInputKind), StreamError> {
    let path = path.as_ref();
    let kind = detect_input(path)?;
    let reduction = match kind {
        TraceInputKind::Text => reduce_trace_file_obs(config, path, shards, recorder)?,
        TraceInputKind::ContainerV2 => reduce_container_file_obs(config, path, shards, recorder)?,
        TraceInputKind::BinaryV1 => {
            let mut obs = recorder.shard();
            let span = obs.start();
            let bytes = std::fs::read(path)?;
            let app =
                trace_model::codec::decode_app_trace(&bytes).map_err(ContainerError::Codec)?;
            obs.end(trace_obs::Stage::Parse, span);
            // The matching counters drain inside `reduce_app_obs`; the
            // stream-level stats drain below.
            let (reduced, matching) = Reducer::new(config).reduce_app_obs(&app, recorder);
            let segments: usize = app.ranks.iter().map(|r| r.segment_instance_count()).sum();
            let stats = StreamStats {
                ranks: app.rank_count(),
                events: app.total_events(),
                segments,
                stored: reduced.total_stored(),
                execs: reduced.total_execs(),
                // Monolithic: every segment (and the whole file) resident.
                peak_resident_segments: segments,
                peak_chunk_bytes: bytes.len(),
                matching,
                ..StreamStats::default()
            };
            if obs.is_enabled() {
                use trace_obs::names;
                obs.add(names::STREAM_RANKS, stats.ranks as u64);
                obs.add(names::STREAM_EVENTS, stats.events as u64);
                obs.add(names::STREAM_SEGMENTS, stats.segments as u64);
                obs.add(names::STREAM_STORED, stats.stored as u64);
                obs.add(names::STREAM_EXECS, stats.execs as u64);
                obs.gauge_max(
                    names::STREAM_PEAK_RESIDENT_SEGMENTS,
                    stats.peak_resident_segments as u64,
                );
                obs.gauge_max(
                    names::STREAM_PEAK_CHUNK_BYTES,
                    stats.peak_chunk_bytes as u64,
                );
            }
            obs.finish();
            StreamReduction { reduced, stats }
        }
    };
    Ok((reduction, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use trace_container::{encode_app_container, encode_reduced_container, ChunkSpec};
    use trace_model::codec::encode_app_trace;
    use trace_reduce::Method;
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    fn temp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("trace_stream_bin_{}_{name}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn container_stream_equals_in_memory_for_every_chunk_size() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let config = MethodConfig::with_default_threshold(Method::AvgWave);
        let in_memory = Reducer::new(config).reduce_app(&app);
        for segments_per_chunk in [1, 3, 64, usize::MAX] {
            let bytes = encode_app_container(&app, ChunkSpec::with_segments(segments_per_chunk));
            let streamed = reduce_container_stream(config, Cursor::new(&bytes)).unwrap();
            assert_eq!(
                streamed.reduced, in_memory,
                "{segments_per_chunk} seg/chunk"
            );
            assert_eq!(streamed.stats.ranks, app.rank_count());
            assert_eq!(streamed.stats.events, app.total_events());
            assert!(streamed.stats.peak_chunk_bytes > 0);
        }
    }

    #[test]
    fn index_sharded_ingestion_matches_single_shard() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let bytes = encode_app_container(&app, ChunkSpec::with_segments(8));
        let path = temp_file("sharded.trc", &bytes);
        let config = MethodConfig::with_default_threshold(Method::RelDiff);
        let sequential = reduce_container_file(config, &path, 1).unwrap();
        for shards in [2, 3, 8, 64] {
            let sharded = reduce_container_file(config, &path, shards).unwrap();
            assert_eq!(sharded.reduced, sequential.reduced, "{shards} shards");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn autodetect_dispatches_all_three_input_kinds() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let config = MethodConfig::with_default_threshold(Method::Euclidean);
        let expected = Reducer::new(config).reduce_app(&app);

        let text = temp_file("auto.txt", trace_format::write_app_trace(&app).as_bytes());
        let v1 = temp_file("auto_v1.trc", &encode_app_trace(&app));
        let v2 = temp_file(
            "auto_v2.trc",
            &encode_app_container(&app, ChunkSpec::default()),
        );

        for (path, want_kind) in [
            (&text, TraceInputKind::Text),
            (&v1, TraceInputKind::BinaryV1),
            (&v2, TraceInputKind::ContainerV2),
        ] {
            let (reduction, kind) = reduce_any_file(config, path, 2).unwrap();
            assert_eq!(kind, want_kind);
            assert_eq!(reduction.reduced, expected, "{}", kind.label());
        }

        for p in [&text, &v1, &v2] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn reduced_containers_are_rejected_as_streaming_input() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let config = MethodConfig::with_default_threshold(Method::RelDiff);
        let reduced = Reducer::new(config).reduce_app(&app);
        let bytes = encode_reduced_container(&reduced, ChunkSpec::default());

        let err = reduce_container_stream(config, Cursor::new(&bytes)).unwrap_err();
        assert!(err.as_container().is_some(), "{err}");

        let path = temp_file("reduced.trc", &bytes);
        let err = reduce_container_file(config, &path, 4).unwrap_err();
        assert!(err.as_container().is_some(), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
