//! Abstraction over where streamed trace items come from.
//!
//! The online reduction loop in [`crate::reduce`] only needs three things
//! from its input: the next rank-boundary-or-record item, the ability to
//! skip the rest of a rank section cheaply (for sharding), and an error
//! channel.  [`AppItemSource`] captures exactly that, so the same loop
//! drives the line-oriented text parser ([`crate::parser::StreamParser`])
//! and the chunked binary container reader
//! ([`crate::binary::ContainerSource`]) without caring which format the
//! bytes were in.

use std::io::BufRead;

use trace_model::Rank;

use crate::error::StreamError;
use crate::parser::{AppItem, StreamParser};

/// A pull source of [`AppItem`]s: rank boundaries and records, in stream
/// order, with cheap skipping of unwanted rank sections.
pub trait AppItemSource {
    /// Pulls the next item, or `Ok(None)` once the trace trailer has been
    /// consumed.
    fn next_item(&mut self) -> Result<Option<AppItem>, StreamError>;

    /// Skips the remainder of the open rank section without decoding its
    /// payloads; returns the skipped rank.
    fn skip_current_rank(&mut self) -> Result<Rank, StreamError>;
}

impl<R: BufRead> AppItemSource for StreamParser<R> {
    fn next_item(&mut self) -> Result<Option<AppItem>, StreamError> {
        StreamParser::next_item(self)
    }

    fn skip_current_rank(&mut self) -> Result<Rank, StreamError> {
        StreamParser::skip_current_rank(self)
    }
}
